/**
 * The fleet result store's contracts: LPRES1 round-trips records
 * bit-exactly, loading is corruption-strict (every single-byte
 * truncation and byte flip throws, nothing loads partially),
 * duplicate keys resolve last-writer-wins and compact() drops the
 * shadowed records, campaign memoization restores cells bit-identical
 * to replaying at every thread count, the stored-CPI cross-check
 * catches a tampered record, and the campaign JSON report survives a
 * strict parser even with hostile free-text fields.
 */

#include "test_util.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include <unistd.h>

#include "core/campaign.hh"
#include "io/atomic_file.hh"
#include "io/io_error.hh"
#include "store/result_store.hh"
#include "util/log.hh"

namespace
{

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    CHECK(f != nullptr);
    std::vector<std::uint8_t> out;
    std::uint8_t buf[4096];
    std::size_t n;
    while (f && (n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.insert(out.end(), buf, buf + n);
    if (f)
        std::fclose(f);
    return out;
}

void
writeAll(const std::string &path, const std::uint8_t *data,
         std::size_t size)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    CHECK(f != nullptr);
    if (f) {
        CHECK_EQ(std::fwrite(data, 1, size, f), size);
        std::fclose(f);
    }
}

std::uint64_t
leU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
putLeU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

lp::CellRecord
sampleCell(std::uint64_t salt)
{
    lp::CellRecord r;
    r.key.libHash = 0x1111 + salt;
    r.key.configDigest = 0x2222 + salt;
    r.key.shuffleSeed = 5;
    r.key.blockSize = 8;
    r.key.stopAtConfidence = (salt & 1) != 0;
    r.key.approxWrongPath = false;
    if (r.key.stopAtConfidence) {
        r.key.levelBits = lp::doubleBits(0.997);
        r.key.relErrBits = lp::doubleBits(0.03);
    }
    r.libPoints = 100 + salt;
    r.processed = 90 + salt;
    r.unavailableLoads = salt;
    r.converged = r.key.stopAtConfidence;
    r.cpiBits = lp::doubleBits(1.25 + 0.001 * static_cast<double>(salt));
    r.stat.n = r.processed;
    r.stat.mean = 1.25 + 0.001 * static_cast<double>(salt);
    r.stat.m2 = 0.125;
    r.stat.min = 0.5;
    r.stat.max = 3.75;
    return r;
}

bool
cellsBitEqual(const lp::CellRecord &a, const lp::CellRecord &b)
{
    using lp::doubleBits;
    return a.key == b.key && a.libPoints == b.libPoints &&
           a.processed == b.processed &&
           a.unavailableLoads == b.unavailableLoads &&
           a.converged == b.converged && a.cpiBits == b.cpiBits &&
           a.stat.n == b.stat.n &&
           doubleBits(a.stat.mean) == doubleBits(b.stat.mean) &&
           doubleBits(a.stat.m2) == doubleBits(b.stat.m2) &&
           doubleBits(a.stat.min) == doubleBits(b.stat.min) &&
           doubleBits(a.stat.max) == doubleBits(b.stat.max);
}

} // namespace

int
main()
{
    using namespace lp;
    using namespace lptest;

    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path() /
        ("lp-test-store-" + std::to_string(::getpid()));
    std::filesystem::create_directories(tmp);
    const std::string storePath = (tmp / "results.lpres").string();

    // --- The validator itself must be strict before anything trusts
    // it.
    CHECK(jsonValidate("{\"a\": [1, 2.5, -3e-2], \"b\": \"x\\u0001\"}"));
    CHECK(jsonValidate("[]"));
    CHECK(!jsonValidate(""));
    CHECK(!jsonValidate("{\"a\": 1,}"));     // trailing comma
    CHECK(!jsonValidate("{\"a\": 01}"));     // leading zero
    CHECK(!jsonValidate("{\"a\": nan}"));    // not a JSON number
    CHECK(!jsonValidate("\"raw \x01 ctl\"")); // unescaped control byte
    CHECK(!jsonValidate("\"bad \\x escape\""));
    CHECK(!jsonValidate("{\"a\": 1} trailing"));

    // --- Key canonicalization: a full-library run is spec-free.
    {
        ConfidenceSpec tight{0.997, 0.01}, loose{0.95, 0.10};
        const ResultKey a =
            ResultKey::make(1, 2, 3, 4, false, false, tight);
        const ResultKey b =
            ResultKey::make(1, 2, 3, 4, false, false, loose);
        CHECK(a == b);
        CHECK_EQ(a.levelBits, 0u);
        const ResultKey c =
            ResultKey::make(1, 2, 3, 4, true, false, tight);
        const ResultKey d =
            ResultKey::make(1, 2, 3, 4, true, false, loose);
        CHECK(!(c == d));
        CHECK(!(a == c));
    }

    // --- Round-trip: records come back bit for bit, probes hit and
    // miss correctly.
    {
        ResultStore store;
        for (std::uint64_t i = 0; i < 5; ++i)
            store.put(sampleCell(i));
        PairRecord p;
        p.libHash = 0x1111;
        p.baseDigest = 0x2222;
        p.testDigest = 0x2223;
        p.shuffleSeed = 5;
        p.blockSize = 8;
        p.delta.n = 90;
        p.delta.mean = -0.001;
        p.delta.m2 = 0.002;
        p.delta.min = -0.1;
        p.delta.max = 0.1;
        store.putPair(p);
        store.save(storePath);

        ResultStore loaded;
        loaded.load(storePath);
        CHECK_EQ(loaded.cellCount(), 5u);
        CHECK_EQ(loaded.pairCount(), 1u);
        CHECK_EQ(loaded.supersededRecords(), 0u);
        for (std::uint64_t i = 0; i < 5; ++i) {
            CellRecord got;
            CHECK(loaded.find(sampleCell(i).key, &got));
            CHECK(cellsBitEqual(got, sampleCell(i)));
        }
        CellRecord miss;
        CHECK(!loaded.find(sampleCell(17).key, &miss));
        PairRecord gotPair;
        CHECK(loaded.findPair(p, &gotPair));
        CHECK_EQ(doubleBits(gotPair.delta.mean),
                 doubleBits(p.delta.mean));
        PairRecord wrongPair = p;
        wrongPair.testDigest = 0x9999;
        CHECK(!loaded.findPair(wrongPair, nullptr));

        // put() overwrites in place: no duplicates accumulate.
        CellRecord again = sampleCell(2);
        again.cpiBits = doubleBits(9.0);
        loaded.put(again);
        CHECK_EQ(loaded.cellCount(), 5u);
        CellRecord raced;
        CHECK(loaded.find(again.key, &raced));
        CHECK_EQ(raced.cpiBits, doubleBits(9.0));
    }

    // --- Corruption strictness: truncation at EVERY byte boundary
    // and a flip of EVERY byte must throw; nothing loads partially.
    {
        ResultStore small;
        small.put(sampleCell(0));
        small.put(sampleCell(1));
        PairRecord p;
        p.libHash = 1;
        p.baseDigest = 2;
        p.testDigest = 3;
        p.delta.n = 4;
        small.putPair(p);
        small.save(storePath);
        const std::vector<std::uint8_t> image = readAll(storePath);
        CHECK(image.size() > 48 + 16);

        const std::string mut = (tmp / "mutant.lpres").string();
        for (std::size_t len = 0; len < image.size(); ++len) {
            writeAll(mut, image.data(), len);
            ResultStore victim;
            CHECK_THROWS(victim.load(mut));
        }
        for (std::size_t i = 0; i < image.size(); ++i) {
            std::vector<std::uint8_t> flip = image;
            flip[i] ^= 0x01;
            writeAll(mut, flip.data(), flip.size());
            ResultStore victim;
            CHECK_THROWS(victim.load(mut));
        }
        std::remove(mut.c_str());
    }

    // --- Duplicate keys on disk: legal, last writer wins, compact()
    // drops the shadowed record. Built by hand-patching record 1 into
    // a duplicate of record 0 (new payload, recomputed record FNV,
    // index entry, and footer), exactly what an append-style producer
    // or crashed compaction leaves behind.
    {
        ResultStore two;
        two.put(sampleCell(0));
        two.put(sampleCell(1));
        two.save(storePath);
        std::vector<std::uint8_t> image = readAll(storePath);

        const std::size_t metaSize =
            static_cast<std::size_t>(leU64(image.data() + 16));
        const std::size_t indexOff = 48 + metaSize;
        const std::size_t cellBase = indexOff + 2 * 8;
        constexpr std::size_t kCellBytes = 17 * 8;

        // Record 1 := record 0's key with a different CPI + mean.
        std::uint8_t *rec0 = image.data() + cellBase;
        std::uint8_t *rec1 = rec0 + kCellBytes;
        std::memcpy(rec1, rec0, kCellBytes);
        putLeU64(rec1 + 80, doubleBits(2.5)); // cpiBits
        putLeU64(rec1 + 96, doubleBits(2.5)); // stat mean bits
        putLeU64(rec1 + 16 * 8, fnv1a(rec1, 16 * 8));
        // Index entry 1 now carries record 0's key hash.
        std::memcpy(image.data() + indexOff + 8,
                    image.data() + indexOff, 8);
        // Recompute the footer over the patched payload.
        Blob patched(image.begin(),
                     image.end() - checksumFooterBytes);
        appendChecksumFooter(patched);
        writeAll(storePath, patched.data(), patched.size());

        ResultStore dup;
        dup.load(storePath);
        CHECK_EQ(dup.cellCount(), 2u); // both records load...
        CHECK_EQ(dup.supersededRecords(), 1u);
        CellRecord winner;
        CHECK(dup.find(sampleCell(0).key, &winner));
        CHECK_EQ(winner.cpiBits, doubleBits(2.5)); // ...last one wins
        CHECK_EQ(dup.compact(), 1u);
        CHECK_EQ(dup.cellCount(), 1u);
        CHECK(dup.find(sampleCell(0).key, &winner));
        CHECK_EQ(winner.cpiBits, doubleBits(2.5));
        dup.save(storePath);
        ResultStore clean;
        clean.load(storePath);
        CHECK_EQ(clean.cellCount(), 1u);
        CHECK_EQ(clean.supersededRecords(), 0u);
    }

    // --- save() without open() must refuse (no remembered path).
    {
        ResultStore empty;
        CHECK_THROWS(empty.save());
    }

    // --- Campaign memoization: a populated store resolves every
    // overlapping cell without replaying, bit-identical to the fresh
    // run at every thread count; a widened grid replays only the new
    // column.
    std::vector<CoreConfig> cfgs{baseConfig(), slowMemConfig()};
    const TinyLib t =
        buildTinyLibrary("store-w0", 150'000, 9, 24, cfgs, 3);
    const std::vector<CampaignWorkload> grid{
        {"store-w0", &t.prog, &t.lib}};

    CampaignOptions copt;
    copt.blockSize = 8;
    copt.shuffleSeed = 5;
    CampaignEngine fresh(grid, cfgs, copt);
    const CampaignResult freshRes = fresh.run();
    CHECK_EQ(freshRes.memoizedCells, 0u);

    ResultStore store;
    const std::size_t published = fresh.publish(freshRes, store);
    CHECK_EQ(store.cellCount(), cfgs.size());
    CHECK_EQ(store.pairCount(), 1u);
    CHECK_EQ(published, cfgs.size() + 1);
    // Republishing is idempotent.
    CHECK_EQ(fresh.publish(freshRes, store), published);
    CHECK_EQ(store.cellCount(), cfgs.size());

    for (unsigned threads : {1u, 2u, 4u}) {
        CampaignOptions mo = copt;
        mo.threads = threads;
        mo.resultStore = &store;
        CampaignEngine memo(grid, cfgs, mo);
        const CampaignResult mres = memo.run();
        CHECK_EQ(mres.memoizedCells, cfgs.size());
        CHECK_EQ(mres.pointsDecoded, 0u);
        CHECK_EQ(mres.replaysExecuted, 0u);
        CHECK_EQ(mres.memoizedReplays,
                 static_cast<std::uint64_t>(t.lib.size()) *
                     cfgs.size());
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
            const CampaignCell &mc = mres.cell(0, c, cfgs.size());
            const CampaignCell &fc = freshRes.cell(0, c, cfgs.size());
            CHECK(mc.memoized);
            CHECK_EQ(doubleBits(mc.cpi()), doubleBits(fc.cpi()));
            CHECK_EQ(mc.processed, fc.processed);
            CHECK_EQ(mc.unavailableLoads, fc.unavailableLoads);
            CHECK_EQ(mc.stat.count(), fc.stat.count());
            CHECK_EQ(doubleBits(mc.stat.mean()),
                     doubleBits(fc.stat.mean()));
        }
        // Pairs between two memoized cells restore from the store.
        const CampaignPair *mp = mres.pair(0, 0, 1);
        const CampaignPair *fp = freshRes.pair(0, 0, 1);
        CHECK(mp && fp);
        CHECK_EQ(mp->delta.count(), fp->delta.count());
        CHECK_EQ(doubleBits(mp->meanDelta()),
                 doubleBits(fp->meanDelta()));
        // The memoized report still parses strictly and says so.
        const std::string report = memo.jsonReport(mres);
        CHECK(jsonValidate(report));
        CHECK(report.find("\"memoized\": true") != std::string::npos);
    }

    // --- Widened grid: the overlap memoizes, only the new column
    // replays, and everything matches the from-scratch wide run.
    {
        std::vector<CoreConfig> wide = cfgs;
        CoreConfig extra = baseConfig();
        extra.name = "mem-140";
        extra.mem.memLatency = 140;
        wide.push_back(extra);

        CampaignOptions wo = copt;
        wo.resultStore = &store;
        CampaignEngine memoWide(grid, wide, wo);
        const CampaignResult wres = memoWide.run();
        CampaignEngine scratchWide(grid, wide, copt);
        const CampaignResult sres = scratchWide.run();

        CHECK_EQ(wres.memoizedCells, cfgs.size());
        CHECK_EQ(wres.foldedReplays,
                 static_cast<std::uint64_t>(t.lib.size()));
        for (std::size_t c = 0; c < wide.size(); ++c) {
            const CampaignCell &wc = wres.cell(0, c, wide.size());
            const CampaignCell &sc = sres.cell(0, c, wide.size());
            CHECK_EQ(doubleBits(wc.cpi()), doubleBits(sc.cpi()));
            CHECK_EQ(wc.processed, sc.processed);
        }
        CHECK_EQ(wres.cell(0, 2, wide.size()).memoized, false);
        // Memoized-pair restore covers the memoized x memoized pair;
        // memoized x fresh pairs stay empty (per-point deltas are not
        // reconstructable from fold state — the documented limit).
        CHECK_EQ(wres.pair(0, 0, 1)->delta.count(),
                 sres.pair(0, 0, 1)->delta.count());
        CHECK_EQ(wres.pair(0, 0, 2)->delta.count(), 0u);
        CHECK(sres.pair(0, 0, 2)->delta.count() > 0u);

        // Publishing the wide run completes the store for next time.
        memoWide.publish(wres, store);
        CHECK_EQ(store.cellCount(), wide.size());
    }

    // --- A store whose library size disagrees with the workload is
    // ignored (fresh replay), and a tampered CPI bit pattern fails
    // the restore cross-check loudly instead of being served.
    {
        ResultStore stale;
        fresh.publish(freshRes, stale);
        std::vector<CellRecord> recs = stale.cells();
        for (CellRecord r : recs) {
            r.libPoints += 1;
            stale.put(r); // same key, wrong libPoints -> no memo hit
        }
        // Overwrite under the same keys happened in place: the
        // records now disagree with the library, so nothing memoizes.
        CampaignOptions so = copt;
        so.resultStore = &stale;
        CampaignEngine engine(grid, cfgs, so);
        const CampaignResult r = engine.run();
        CHECK_EQ(r.memoizedCells, 0u);
        CHECK_EQ(doubleBits(r.cell(0, 0, cfgs.size()).cpi()),
                 doubleBits(freshRes.cell(0, 0, cfgs.size()).cpi()));

        ResultStore tampered;
        fresh.publish(freshRes, tampered);
        for (CellRecord rec : tampered.cells()) {
            rec.cpiBits ^= 1; // no longer the fold state's mean
            tampered.put(rec);
        }
        CampaignOptions to = copt;
        to.resultStore = &tampered;
        CampaignEngine victim(grid, cfgs, to);
        CHECK_THROWS(victim.run());
    }

    // --- Hostile free text in the report: quotes, backslashes, and
    // control bytes in every string field must still yield strictly
    // parseable JSON (the IoError-detail regression).
    {
        std::vector<CoreConfig> evil = cfgs;
        evil[0].name = "quote\" back\\slash";
        evil[1].name = "ctl\x01\x02\ntab\t";
        const std::vector<CampaignWorkload> egrid{
            {"w\"0\\\x1f", &t.prog, &t.lib}};
        CampaignEngine engine(egrid, evil, copt);
        CampaignResult r = engine.run();
        r.cells[0].failed = true;
        r.cells[0].reason = CellFailReason::replayFault;
        r.cells[0].failureReason =
            "io error: \"inject\\path\" \x01\x02\x1f\n\t fault";
        r.failedCells = 1;
        r.cancelled = true;
        r.cancelReason = "operator said \"stop\"\r\n";
        const std::string report = engine.jsonReport(r);
        CHECK(jsonValidate(report));
        CHECK(report.find("\\u0001") != std::string::npos);
        CHECK(report.find("\\\"inject\\\\path\\\"") !=
              std::string::npos);
    }

    std::filesystem::remove_all(tmp);
    return TEST_MAIN_RESULT();
}
