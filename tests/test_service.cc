/**
 * The campaign service: protocol framing and JobSpec codec, job
 * lifecycle over the in-process service (submit/status/result/
 * cancel/resume), admission control, the cancel/deadline matrix at
 * threads 1/2/4 with resume bit-identity, stuck-worker supervision
 * (an injected hang is contained to one cell while every other cell
 * of every job completes), quarantined-shard degradation, a
 * daemon+client socket round trip, and a fork-based SIGKILL crash
 * matrix: a daemon killed at successive barriers must recover its
 * jobs on restart and finish them bit-identical to standalone runs.
 */

#include "test_util.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/campaign.hh"
#include "core/library_set.hh"
#include "svc/client.hh"
#include "svc/daemon.hh"
#include "svc/proto.hh"
#include "svc/service.hh"
#include "util/failpoint.hh"
#include "util/log.hh"

#if defined(__unix__) || defined(__APPLE__)
#define LP_TEST_FORK 1
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define LP_TEST_FORK 0
#endif

namespace
{

using namespace lp;
using namespace lptest;

/** Arm one site programmatically. */
void
arm(const char *site, FailpointSpec::Trigger trig, std::uint64_t n,
    FailpointSpec::Action action, int err = EIO)
{
    FailpointSpec spec;
    spec.trigger = trig;
    spec.n = n;
    spec.action = action;
    spec.err = err;
    armFailpoint(site, spec);
}

/** Every value of a repeated `"key": "..."` field, in report order. */
std::vector<std::string>
extractAll(const std::string &json, const std::string &key)
{
    const std::string needle = "\"" + key + "\": \"";
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        const std::size_t end = json.find('"', pos);
        out.push_back(json.substr(pos, end - pos));
        pos = end;
    }
    return out;
}

/** The standard two-workload, two-config job this suite submits. */
JobSpec
makeSpec(unsigned threads)
{
    JobSpec spec;
    spec.name = strfmt("t%u", threads);
    spec.workloads.push_back({"svc-a", "", 150'000, 40});
    spec.workloads.push_back({"svc-b", "", 150'000, 41});
    spec.configs.push_back({"eight", "", 0, 0, 0});
    spec.configs.push_back({"eight", "slow-mem", 400, 40, 0});
    spec.stopAtConfidence = false;
    spec.shuffleSeed = 3;
    spec.threads = threads;
    spec.blockSize = 4;
    return spec;
}

} // namespace

int
main()
{
    using namespace lp;
    using namespace lptest;

    setQuiet(true);
    const std::vector<CoreConfig> cfgs = {baseConfig(),
                                          slowMemConfig()};

    // ---- Fixtures: two shards and the standalone baseline ----------
    const TinyLib w0 = buildTinyLibrary("svc-a", 150'000, 40, 8, cfgs);
    const TinyLib w1 = buildTinyLibrary("svc-b", 150'000, 41, 8, cfgs);
    const std::string setDir = "svc-set";
    std::filesystem::remove_all(setDir);
    {
        LibrarySetWriter writer(setDir);
        writer.addShard("svc-a", w0.lib);
        writer.addShard("svc-b", w1.lib);
    }

    // The bit-identity reference: the same grid run standalone, with
    // exactly the options the service materializes from makeSpec().
    const std::vector<CampaignWorkload> grid{
        {"svc-a", &w0.prog, &w0.lib, nullptr, 0},
        {"svc-b", &w1.prog, &w1.lib, nullptr, 0},
    };
    CampaignOptions copt;
    copt.blockSize = 4;
    copt.shuffleSeed = 3;
    CampaignEngine baseEngine(grid, cfgs, copt);
    const CampaignResult baseline = baseEngine.run();
    CHECK_EQ(baseline.failedCells, 0u);
    const std::string baseReport = baseEngine.jsonReport(baseline);
    const std::vector<std::string> baseBits =
        extractAll(baseReport, "cpi_bits");
    CHECK_EQ(baseBits.size(), 4u);
    CHECK(baseReport.find("\"schema_version\": 3") !=
          std::string::npos);

    // ---- Protocol: JobSpec codec round trip ------------------------
    {
        JobSpec spec = makeSpec(2);
        spec.deadlineMs = 1234;
        spec.level = 0.95;
        const JobSpec back = decodeJobSpec(encodeJobSpec(spec));
        CHECK_EQ(back.name, spec.name);
        CHECK_EQ(back.workloads.size(), 2u);
        CHECK_EQ(back.workloads[1].shard, "svc-b");
        CHECK_EQ(back.workloads[1].tinySeed, 41u);
        CHECK_EQ(back.configs.size(), 2u);
        CHECK_EQ(back.configs[1].name, "slow-mem");
        CHECK_EQ(back.configs[1].memLatency, 400u);
        CHECK_NEAR(back.level, 0.95, 0.0);
        CHECK_EQ(back.threads, 2u);
        CHECK_EQ(back.blockSize, 4u);
        CHECK_EQ(back.deadlineMs, 1234u);
        CHECK(!back.stopAtConfidence);
    }

#if LP_TEST_FORK
    // ---- Protocol: frame integrity over a socketpair ---------------
    {
        int sp[2];
        CHECK_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
        const Blob payload = encodeJobSpec(makeSpec(1));
        sendFrame(sp[0], MsgType::submit, MsgStatus::ok, payload);
        Frame f;
        CHECK(recvFrame(sp[1], f));
        CHECK(f.type == MsgType::submit);
        CHECK(f.payload == payload);

        // A corrupted payload byte must fail the checksum, loudly.
        sendFrame(sp[0], MsgType::submit, MsgStatus::ok, payload);
        std::uint8_t hdr[32];
        CHECK_EQ(::read(sp[1], hdr, sizeof(hdr)),
                 static_cast<ssize_t>(sizeof(hdr)));
        Blob body(payload.size());
        CHECK_EQ(::read(sp[1], body.data(), body.size()),
                 static_cast<ssize_t>(body.size()));
        body[3] ^= 0x40;
        CHECK_EQ(::write(sp[0], hdr, sizeof(hdr)),
                 static_cast<ssize_t>(sizeof(hdr)));
        CHECK_EQ(::write(sp[0], body.data(), body.size()),
                 static_cast<ssize_t>(body.size()));
        CHECK_THROWS(recvFrame(sp[1], f));

        // Clean EOF at a frame boundary is a false return, not a
        // throw; EOF mid-frame is a torn frame.
        ::close(sp[0]);
        CHECK(!recvFrame(sp[1], f));
        ::close(sp[1]);
    }
#endif

    // ---- Lifecycle + bit-identity at threads 1/2/4 -----------------
    {
        ServiceConfig cfg;
        cfg.jobsDir = "svc-jobs-basic";
        cfg.setDir = setDir;
        cfg.workerSlots = 8;
        std::filesystem::remove_all(cfg.jobsDir);
        CampaignService svc(cfg);
        for (const unsigned threads : {1u, 2u, 4u}) {
            const SubmitOutcome out = svc.submit(makeSpec(threads));
            CHECK(out.accepted);
            CHECK(svc.waitForJob(out.id, 30'000));
            JobState state;
            std::string json;
            CHECK(svc.result(out.id, &state, &json));
            CHECK(state == JobState::done);
            CHECK(extractAll(json, "cpi_bits") == baseBits);
            CHECK(json.find("\"schema_version\": 3") !=
                  std::string::npos);
            CHECK(json.find("\"reason\": \"none\"") !=
                  std::string::npos);
            // The first run populates the service's result store;
            // identical resubmissions resolve every cell from it
            // (zero replays) with the same bits — the daemon-side
            // memoization contract at every thread count.
            if (threads == 1u) {
                CHECK(json.find("\"memoized_cells\": 0") !=
                      std::string::npos);
            } else {
                CHECK(json.find("\"memoized\": true") !=
                      std::string::npos);
                CHECK(json.find("\"memoized_cells\": 4") !=
                      std::string::npos);
                CHECK(json.find("\"replays_executed\": 0") !=
                      std::string::npos);
            }
        }

        // Unknown jobs and invalid specs are rejected loudly.
        CHECK(!svc.status(999).found);
        CHECK(!svc.cancel(999, "x"));
        JobSpec bad = makeSpec(1);
        bad.workloads[0].shard = "no-such-shard";
        CHECK(!svc.submit(bad).accepted);
        bad = makeSpec(1);
        bad.configs[0].preset = "mystery";
        CHECK(!svc.submit(bad).accepted);
        svc.drain();
    }

    // ---- Admission: queue depth and resident budget ----------------
    {
        ServiceConfig cfg;
        cfg.jobsDir = "svc-jobs-admit";
        cfg.setDir = setDir;
        cfg.workerSlots = 2; // one 2-thread job at a time
        cfg.maxQueueDepth = 1;
        std::filesystem::remove_all(cfg.jobsDir);
        CampaignService svc(cfg);
        // Park the first job so the schedule is deterministic: a runs
        // (parked), b queues, and the third submit must be turned
        // away with a retry hint.
        arm("replay.cell", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::hang);
        const SubmitOutcome a = svc.submit(makeSpec(2));
        CHECK(a.accepted);
        while (svc.status(a.id).state == JobState::queued)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        const SubmitOutcome b = svc.submit(makeSpec(2));
        CHECK(b.accepted);
        const SubmitOutcome c = svc.submit(makeSpec(2));
        CHECK(!c.accepted);
        CHECK(c.retry);
        CHECK(c.retryAfterMs > 0);
        disarmAllFailpoints();
        CHECK(svc.waitForJob(a.id, 30'000));
        CHECK(svc.waitForJob(b.id, 30'000));
        JobState state;
        std::string json;
        CHECK(svc.result(b.id, &state, &json));
        CHECK(state == JobState::done);
        CHECK(extractAll(json, "cpi_bits") == baseBits);
        svc.drain();
    }
    {
        ServiceConfig cfg;
        cfg.jobsDir = "svc-jobs-resident";
        cfg.setDir = setDir;
        cfg.workerSlots = 8;
        cfg.maxResidentBytes = 1; // any second job exceeds this
        std::filesystem::remove_all(cfg.jobsDir);
        CampaignService svc(cfg);
        // Park the first job so it stays resident for the check (the
        // hang releases when the site is disarmed, faulting nothing).
        arm("replay.cell", FailpointSpec::Trigger::nth, 1,
            FailpointSpec::Action::hang);
        const SubmitOutcome a = svc.submit(makeSpec(1));
        CHECK(a.accepted); // a lone job always runs, however large
        const SubmitOutcome b = svc.submit(makeSpec(1));
        CHECK(!b.accepted);
        CHECK(b.retry);
        disarmAllFailpoints();
        CHECK(svc.waitForJob(a.id, 30'000));
        JobState state;
        std::string json;
        CHECK(svc.result(a.id, &state, &json));
        CHECK(state == JobState::done);
        CHECK(extractAll(json, "cpi_bits") == baseBits);
        svc.drain();
    }

    // ---- Cancel / deadline matrix at threads 1/2/4 -----------------
    // Park a worker mid-block, land the cancel (or let the deadline
    // lapse) while it is parked, release it: the run must stop at the
    // next barrier — a durable resume point — and resume() must carry
    // it to a final grid bit-identical to the standalone run.
    for (const unsigned threads : {1u, 2u, 4u}) {
        ServiceConfig cfg;
        cfg.jobsDir = strfmt("svc-jobs-cancel-%u", threads);
        cfg.setDir = setDir;
        cfg.workerSlots = 8;
        std::filesystem::remove_all(cfg.jobsDir);
        CampaignService svc(cfg);

        // Cancel leg.
        arm("replay.cell", FailpointSpec::Trigger::nth, 5,
            FailpointSpec::Action::hang);
        const SubmitOutcome out = svc.submit(makeSpec(threads));
        CHECK(out.accepted);
        while (svc.status(out.id).state == JobState::queued)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        CHECK(svc.cancel(out.id, "matrix cancel"));
        disarmAllFailpoints();
        CHECK(svc.waitForJob(out.id, 30'000));
        JobStatusInfo st = svc.status(out.id);
        CHECK(st.state == JobState::cancelled);
        CHECK(st.detail.find("matrix cancel") != std::string::npos);
        SubmitOutcome res = svc.resume(out.id);
        CHECK(res.accepted);
        CHECK(svc.waitForJob(out.id, 30'000));
        JobState state;
        std::string json;
        CHECK(svc.result(out.id, &state, &json));
        CHECK(state == JobState::done);
        CHECK(extractAll(json, "cpi_bits") == baseBits);

        // Deadline leg: the deadline lapses while the worker is
        // parked, so the stop is deterministic; each resume then has
        // a fresh budget and finishes the job. A fresh service (and
        // jobs dir) keeps its result store empty — the cancel leg's
        // completed job published this grid, and a memoized
        // resubmission would finish before any deadline could lapse.
        ServiceConfig dcfg = cfg;
        dcfg.jobsDir = strfmt("svc-jobs-deadline-%u", threads);
        std::filesystem::remove_all(dcfg.jobsDir);
        CampaignService dsvc(dcfg);
        arm("replay.cell", FailpointSpec::Trigger::nth, 5,
            FailpointSpec::Action::hang);
        JobSpec dspec = makeSpec(threads);
        dspec.deadlineMs = 100;
        const SubmitOutcome dout = dsvc.submit(dspec);
        CHECK(dout.accepted);
        while (dsvc.status(dout.id).state == JobState::queued)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        disarmAllFailpoints();
        CHECK(dsvc.waitForJob(dout.id, 30'000));
        st = dsvc.status(dout.id);
        CHECK(st.state == JobState::cancelled);
        CHECK(st.detail.find("deadline") != std::string::npos);
        // Every resume folds at least one more durable block, so the
        // job converges in a bounded number of rounds even against a
        // tight recurring deadline.
        int rounds = 0;
        while (dsvc.status(dout.id).state == JobState::cancelled &&
               rounds++ < 25) {
            CHECK(dsvc.resume(dout.id).accepted);
            CHECK(dsvc.waitForJob(dout.id, 30'000));
        }
        CHECK(dsvc.result(dout.id, &state, &json));
        CHECK(state == JobState::done);
        CHECK(extractAll(json, "cpi_bits") == baseBits);
        dsvc.drain();
        svc.drain();
        if (lpTestFailures)
            break;
    }

    // ---- Stuck-worker supervision ----------------------------------
    // One injected hang across two concurrent jobs: the supervisor
    // must detect the stall, abort only the parked replay, and every
    // other cell of every job must complete bit-identical.
    {
        ServiceConfig cfg;
        cfg.jobsDir = "svc-jobs-stuck";
        cfg.setDir = setDir;
        cfg.workerSlots = 8;
        cfg.stuckTimeoutMs = 100;
        cfg.supervisorPeriodMs = 10;
        std::filesystem::remove_all(cfg.jobsDir);
        CampaignService svc(cfg);
        arm("replay.cell", FailpointSpec::Trigger::nth, 5,
            FailpointSpec::Action::hang);
        const SubmitOutcome a = svc.submit(makeSpec(2));
        const SubmitOutcome b = svc.submit(makeSpec(2));
        CHECK(a.accepted);
        CHECK(b.accepted);
        CHECK(svc.waitForJob(a.id, 30'000));
        CHECK(svc.waitForJob(b.id, 30'000));
        disarmAllFailpoints();
        int stuckCells = 0;
        int healthyCells = 0;
        for (const std::uint64_t id : {a.id, b.id}) {
            JobState state;
            std::string json;
            CHECK(svc.result(id, &state, &json));
            CHECK(state == JobState::done);
            const std::vector<std::string> reasons =
                extractAll(json, "reason");
            const std::vector<std::string> bits =
                extractAll(json, "cpi_bits");
            CHECK_EQ(reasons.size(), baseBits.size());
            for (std::size_t i = 0; i < reasons.size(); ++i) {
                if (reasons[i] == "cell_stuck") {
                    ++stuckCells;
                    CHECK(json.find("supervisor") !=
                          std::string::npos);
                } else {
                    CHECK_EQ(reasons[i], std::string("none"));
                    CHECK_EQ(bits[i], baseBits[i]);
                    ++healthyCells;
                }
            }
        }
        // Exactly one replay parked (nth:5 fires once), so exactly
        // one cell across both jobs failed as stuck.
        CHECK_EQ(stuckCells, 1);
        CHECK_EQ(healthyCells, 7);
        svc.drain();

        // The structured log recorded the detection.
        std::string logText;
        {
            std::FILE *f = std::fopen(
                (cfg.jobsDir + "/service.jsonl").c_str(), "rb");
            CHECK(f != nullptr);
            if (f) {
                char buf[4096];
                std::size_t n;
                while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
                    logText.append(buf, n);
                std::fclose(f);
            }
        }
        CHECK(logText.find("\"event\": \"stuck_detected\"") !=
              std::string::npos);
    }

    // ---- Quarantined shards degrade, never abort -------------------
    {
        const std::string qDir = "svc-set-quarantine";
        std::filesystem::remove_all(qDir);
        {
            LibrarySetWriter writer(qDir);
            writer.addShard("svc-a", w0.lib);
            writer.addShard("svc-b", w1.lib);
        }
        // Tear svc-b's container: openRecover quarantines it.
        {
            LibrarySet probe = LibrarySet::open(qDir);
            const std::string path =
                probe.shardPath(probe.find("svc-b"));
            const auto size = std::filesystem::file_size(path);
            std::filesystem::resize_file(path, size / 2);
        }
        ServiceConfig cfg;
        cfg.jobsDir = "svc-jobs-quarantine";
        cfg.setDir = qDir;
        cfg.workerSlots = 8;
        std::filesystem::remove_all(cfg.jobsDir);
        CampaignService svc(cfg);
        CHECK(svc.set().recovery().degraded);
        const SubmitOutcome out = svc.submit(makeSpec(2));
        CHECK(out.accepted);
        CHECK(svc.waitForJob(out.id, 30'000));
        JobState state;
        std::string json;
        CHECK(svc.result(out.id, &state, &json));
        CHECK(state == JobState::done);
        const std::vector<std::string> reasons =
            extractAll(json, "reason");
        const std::vector<std::string> bits =
            extractAll(json, "cpi_bits");
        CHECK_EQ(reasons.size(), 4u);
        // svc-a's cells (grid-major first) are healthy and
        // bit-identical; svc-b's carry the quarantine reason.
        CHECK_EQ(reasons[0], std::string("none"));
        CHECK_EQ(reasons[1], std::string("none"));
        CHECK_EQ(bits[0], baseBits[0]);
        CHECK_EQ(bits[1], baseBits[1]);
        CHECK_EQ(reasons[2], std::string("shard_quarantined"));
        CHECK_EQ(reasons[3], std::string("shard_quarantined"));
        svc.drain();
        std::filesystem::remove_all(qDir);
        std::filesystem::remove_all(cfg.jobsDir);
    }

#if LP_TEST_FORK
    // ---- Daemon + client over the socket ---------------------------
    {
        ServiceConfig cfg;
        cfg.jobsDir = "svc-jobs-daemon";
        cfg.setDir = setDir;
        cfg.workerSlots = 8;
        std::filesystem::remove_all(cfg.jobsDir);
        const std::string sock = "svc-test.sock";
        SvcDaemon daemon(cfg, sock);
        std::thread server([&] { daemon.run(); });

        SvcClient client(sock);
        const SvcReply sub = client.submit(makeSpec(2));
        CHECK(sub.ok);
        const SvcReply fin = client.waitForJob(sub.id, 30'000);
        CHECK(fin.ok);
        CHECK_EQ(fin.state, std::string("done"));
        const SvcReply res = client.result(sub.id);
        CHECK(res.ok);
        CHECK(extractAll(res.resultJson, "cpi_bits") == baseBits);

        CHECK(!client.status(999).ok);
        CHECK(!client.cancel(999, "x").ok);
        JobSpec bad = makeSpec(1);
        bad.workloads[0].shard = "no-such-shard";
        CHECK(!client.submit(bad).ok);

        CHECK(client.drain().ok);
        server.join();
        std::filesystem::remove_all(cfg.jobsDir);
    }

    // ---- The SIGKILL crash matrix ----------------------------------
    // A child daemon (in-process service: the kill semantics are the
    // process's, not the socket's) arms a crash failpoint at its
    // j-th new barrier and dies there mid-flight with >= 2 concurrent
    // jobs; each restart recovers the job directories, resumes every
    // manifest, and the eventually-completed results must be
    // bit-identical to the standalone grid.
    {
        ServiceConfig cfg;
        cfg.jobsDir = "svc-jobs-crash";
        cfg.setDir = setDir;
        cfg.workerSlots = 8;
        std::filesystem::remove_all(cfg.jobsDir);
        int crashes = 0;
        bool completed = false;
        // hit >= 2 guarantees >= 1 new durable barrier per attempt,
        // so the loop makes progress no matter where the site sits
        // relative to the ledger append.
        for (std::uint64_t hit = 2; hit <= 24 && !completed; ++hit) {
            std::fflush(stdout);
            std::fflush(stderr);
            const pid_t pid = ::fork();
            CHECK(pid >= 0);
            if (pid == 0) {
                // Child: exit codes only — never return into the
                // parent's harness.
                arm("campaign.barrier", FailpointSpec::Trigger::nth,
                    hit, FailpointSpec::Action::crash);
                try {
                    CampaignService svc(cfg);
                    if (svc.jobIds().empty()) {
                        if (!svc.submit(makeSpec(2)).accepted ||
                            !svc.submit(makeSpec(2)).accepted)
                            ::_exit(99);
                    }
                    for (const std::uint64_t id : svc.jobIds())
                        svc.waitForJob(id);
                    for (const std::uint64_t id : svc.jobIds()) {
                        JobState state;
                        std::string json;
                        if (!svc.result(id, &state, &json) ||
                            state != JobState::done)
                            ::_exit(98);
                    }
                    svc.drain();
                } catch (...) {
                    ::_exit(99);
                }
                ::_exit(0);
            }
            int status = 0;
            CHECK_EQ(::waitpid(pid, &status, 0), pid);
            CHECK(WIFEXITED(status));
            const int code =
                WIFEXITED(status) ? WEXITSTATUS(status) : -1;
            CHECK(code == failpointCrashStatus || code == 0);
            if (code == failpointCrashStatus)
                ++crashes;
            else if (code == 0)
                completed = true;
            else
                break;
        }
        CHECK(crashes > 0);
        CHECK(completed);

        // The surviving directories recover as terminal results.
        CampaignService svc(cfg);
        const std::vector<std::uint64_t> ids = svc.jobIds();
        CHECK(ids.size() >= 2u);
        for (const std::uint64_t id : ids) {
            JobState state;
            std::string json;
            CHECK(svc.result(id, &state, &json));
            CHECK(state == JobState::done);
            CHECK(extractAll(json, "cpi_bits") == baseBits);
        }
        svc.drain();
        std::filesystem::remove_all(cfg.jobsDir);
    }
#endif // LP_TEST_FORK

    for (const char *dir :
         {"svc-jobs-basic", "svc-jobs-admit", "svc-jobs-resident",
          "svc-jobs-stuck", "svc-jobs-cancel-1", "svc-jobs-cancel-2",
          "svc-jobs-cancel-4"})
        std::filesystem::remove_all(dir);
    std::filesystem::remove_all(setDir);
    std::filesystem::remove("svc-test.sock");
    return TEST_MAIN_RESULT();
}
