/** Round-trips of the zip block compressor and DER serialization. */

#include "test_util.hh"

#include "codec/der.hh"
#include "codec/zip.hh"

int
main()
{
    using namespace lp;
    using namespace lptest;

    // zip: compressible data round-trips and actually shrinks.
    {
        Blob data(128 * 1024);
        Rng rng(3, "zip");
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] =
                static_cast<std::uint8_t>((i >> 4) ^ (rng.next() & 3));
        const Blob z = zipCompress(data);
        CHECK(z.size() < data.size());
        CHECK(zipDecompress(z) == data);
    }
    // zip: incompressible data still round-trips.
    {
        Blob data(4096);
        Rng rng(4, "zip-rand");
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        CHECK(zipDecompress(zipCompress(data)) == data);
    }
    // zip: tiny and empty inputs.
    {
        CHECK(zipDecompress(zipCompress({})).empty());
        const Blob one{42};
        CHECK(zipDecompress(zipCompress(one)) == one);
    }
    // zip: determinism (the library's compressed sizes must be
    // reproducible run to run).
    {
        Blob data(10000, 7);
        CHECK(zipCompress(data) == zipCompress(data));
    }
    // zipDecompressInto: reuses the caller's buffer across calls and
    // matches zipDecompress, including overlapping (RLE-style)
    // matches where the copy source overruns into the copy itself.
    {
        Blob rle(5000, 9); // long runs -> offset < match length
        Blob mixed(64 * 1024);
        Rng rng(5, "zip-into");
        for (std::size_t i = 0; i < mixed.size(); ++i)
            mixed[i] =
                static_cast<std::uint8_t>((i >> 6) ^ (rng.next() & 1));
        Blob out;
        for (const Blob *data : {&rle, &mixed, &rle}) {
            const Blob z = zipCompress(*data);
            zipDecompressInto(z, out); // recycled across iterations
            CHECK(out == *data);
            CHECK(zipDecompress(z) == *data);
        }
    }

    // zip: overlapping (RLE-style) matches at every short period.
    // Period-p data compresses to matches with offset p (1..4), the
    // offsets whose decompression copy source overlaps its
    // destination.
    {
        for (unsigned period = 1; period <= 4; ++period) {
            Blob data(3000 + period * 17);
            for (std::size_t i = 0; i < data.size(); ++i)
                data[i] = static_cast<std::uint8_t>(
                    0x20 + (i % period) * 31);
            const Blob z = zipCompress(data);
            CHECK(z.size() < data.size() / 8);
            CHECK(zipDecompress(z) == data);
        }
    }
    // zip: matches straddling the 64KiB window boundary. A unique
    // 32-byte block recurs at distances 65535 (the farthest encodable
    // offset) and 65536+ (outside the window, must not be matched);
    // both buffers must round-trip exactly.
    {
        Rng rng(6, "zip-window");
        for (const std::size_t gap : {std::size_t{65535} - 32,
                                      std::size_t{65536} - 32,
                                      std::size_t{70000}}) {
            Blob data;
            Blob block(32);
            for (auto &b : block)
                b = static_cast<std::uint8_t>(rng.next());
            data.insert(data.end(), block.begin(), block.end());
            // Incompressible filler so the only long match is the
            // recurring block.
            for (std::size_t i = 0; i < gap; ++i)
                data.push_back(static_cast<std::uint8_t>(rng.next()));
            data.insert(data.end(), block.begin(), block.end());
            for (std::size_t i = 0; i < 500; ++i)
                data.push_back(static_cast<std::uint8_t>(rng.next()));
            CHECK(zipDecompress(zipCompress(data)) == data);
        }
    }
    // zip: structure shifted by less than a match length — the
    // in-match hash insertions find these; positions inside an
    // emitted match must still seed future matches.
    {
        Blob unit(96);
        for (std::size_t i = 0; i < unit.size(); ++i)
            unit[i] = static_cast<std::uint8_t>(i * 7 + 3);
        Blob data;
        for (unsigned rep = 0; rep < 40; ++rep) {
            data.push_back(static_cast<std::uint8_t>(rep)); // misalign
            data.insert(data.end(), unit.begin(), unit.end());
        }
        const Blob z = zipCompress(data);
        CHECK(z.size() < data.size() / 4);
        CHECK(zipDecompress(z) == data);
    }
    // zip: ratio regression guard on a canned live-point payload —
    // the workload the codec exists for. The greedy single-entry
    // table this matcher replaced landed at 0.669 on this exact
    // point; the hash-chain matcher must stay strictly below that.
    {
        const TinyLib t = buildTinyLibrary("codec-ratio", 120'000, 3, 8);
        const Blob raw = t.lib.get(t.lib.size() / 2).serialize();
        const Blob z = zipCompress(raw);
        CHECK(zipDecompress(z) == raw);
        const double ratio = static_cast<double>(z.size()) /
                             static_cast<double>(raw.size());
        if (ratio > 0.66)
            std::fprintf(stderr, "live-point ratio %.4f\n", ratio);
        CHECK(ratio <= 0.66);
    }

    // zip+dict: a dictionary sharing content with the buffer turns
    // that content into matches — smaller than plain compression —
    // and round-trips through both decoders. An empty dictionary is
    // byte-identical to plain compression (back-compat contract).
    {
        Rng rng(8, "zip-dict");
        Blob dict(24 * 1024);
        for (auto &b : dict)
            b = static_cast<std::uint8_t>(rng.next());
        Blob data;
        // Recurring slices of the dictionary with incompressible glue.
        for (int rep = 0; rep < 40; ++rep) {
            const std::size_t at = rng.nextBounded(dict.size() - 512);
            data.insert(data.end(), dict.begin() + at,
                        dict.begin() + at + 512);
            for (int j = 0; j < 40; ++j)
                data.push_back(static_cast<std::uint8_t>(rng.next()));
        }
        const Blob plain = zipCompress(data);
        const Blob primed = zipCompress(data, ByteSpan(dict));
        CHECK(primed.size() < plain.size());
        Blob out;
        zipDecompressInto(primed.data(), primed.size(), out,
                          ByteSpan(dict));
        CHECK(out == data);
        zipDecompressReferenceInto(primed.data(), primed.size(), out,
                                   ByteSpan(dict));
        CHECK(out == data);
        CHECK(zipCompress(data, ByteSpan()) == plain);
        // Determinism with a dictionary, and oversized-dictionary
        // clamping: only the window-reachable tail can matter.
        CHECK(zipCompress(data, ByteSpan(dict)) == primed);
        Blob big(100 * 1024);
        for (auto &b : big)
            b = static_cast<std::uint8_t>(rng.next());
        const Blob z2 = zipCompress(data, ByteSpan(big));
        zipDecompressInto(z2.data(), z2.size(), out, ByteSpan(big));
        CHECK(out == data);
    }

    // zip+delta: a buffer delta-compressed against a near-identical
    // predecessor collapses to a fraction of its plain size — the
    // cross-point redundancy the live-point library exploits — and
    // round-trips through both decoders, including with size drift.
    {
        Rng rng(9, "zip-delta");
        Blob prev(200 * 1024);
        for (std::size_t i = 0; i < prev.size(); ++i)
            prev[i] =
                static_cast<std::uint8_t>((i >> 3) ^ (rng.next() & 7));
        Blob data = prev;
        for (int e = 0; e < 20; ++e)
            data[rng.nextBounded(data.size())] ^= 0x5a;
        // Insert a run so every later chunk is misaligned vs prev.
        data.insert(data.begin() + 50'000, 700, 0xee);
        const Blob plain = zipCompress(data);
        const Blob delta = zipCompressDelta(data, ByteSpan(prev));
        CHECK(delta.size() * 4 < plain.size());
        Blob out;
        zipDecompressDeltaInto(delta.data(), delta.size(),
                               ByteSpan(prev), out);
        CHECK(out == data);
        zipDecompressDeltaReferenceInto(delta.data(), delta.size(),
                                        ByteSpan(prev), out);
        CHECK(out == data);
        CHECK(zipCompressDelta(data, ByteSpan(prev)) == delta);
        // Degenerate shapes: empty payload, empty predecessor, and a
        // payload far longer than its predecessor.
        const Blob e0 = zipCompressDelta(Blob{}, ByteSpan(prev));
        zipDecompressDeltaInto(e0.data(), e0.size(), ByteSpan(prev),
                               out);
        CHECK(out.empty());
        const Blob e1 = zipCompressDelta(data, ByteSpan());
        zipDecompressDeltaInto(e1.data(), e1.size(), ByteSpan(), out);
        CHECK(out == data);
        Blob shortPrev(prev.begin(), prev.begin() + 1000);
        const Blob e2 = zipCompressDelta(data, ByteSpan(shortPrev));
        zipDecompressDeltaInto(e2.data(), e2.size(),
                               ByteSpan(shortPrev), out);
        CHECK(out == data);
    }

    // zipTrainDictionary: deterministic, size-capped, and effective —
    // a dictionary trained on sibling payloads beats plain
    // compression on a payload they resemble.
    {
        const TinyLib t = buildTinyLibrary("codec-dict", 120'000, 3, 8);
        std::vector<Blob> raws;
        for (std::size_t i = 0; i + 1 < t.lib.size(); ++i)
            raws.push_back(t.lib.get(i).serialize());
        std::vector<ByteSpan> samples;
        for (const Blob &r : raws)
            samples.emplace_back(r);
        const Blob dict = zipTrainDictionary(samples, 32 * 1024);
        CHECK(dict.size() <= 32 * 1024);
        CHECK(!dict.empty());
        CHECK(zipTrainDictionary(samples, 32 * 1024) == dict);
        const Blob target = t.lib.get(t.lib.size() - 1).serialize();
        const Blob plain = zipCompress(target);
        const Blob primed = zipCompress(target, ByteSpan(dict));
        CHECK(primed.size() < plain.size());
        Blob out;
        zipDecompressInto(primed.data(), primed.size(), out,
                          ByteSpan(dict));
        CHECK(out == target);
    }

    // der: nested sequences with every value type.
    {
        DerWriter w;
        w.beginSequence();
        w.putUint(0);
        w.putUint(127);
        w.putUint(0xdeadbeefcafeull);
        w.putString("live-points");
        w.putBytes(Blob{1, 2, 3});
        w.beginSequence();
        for (int i = 0; i < 300; ++i) // force a long-form length
            w.putUint(static_cast<std::uint64_t>(i) * 77);
        w.endSequence();
        w.putDouble(3.14159);
        w.endSequence();
        const Blob data = w.finish();

        DerReader top(data);
        DerReader seq = top.getSequence();
        CHECK_EQ(seq.getUint(), 0u);
        CHECK_EQ(seq.getUint(), 127u);
        CHECK_EQ(seq.getUint(), 0xdeadbeefcafeull);
        CHECK(seq.getString() == "live-points");
        CHECK(seq.getBytes() == (Blob{1, 2, 3}));
        DerReader inner = seq.getSequence();
        std::uint64_t i = 0;
        while (!inner.atEnd())
            CHECK_EQ(inner.getUint(), (i++) * 77);
        CHECK_EQ(i, 300u);
        CHECK_NEAR(seq.getDouble(), 3.14159, 0.0);
        CHECK(seq.atEnd());
        CHECK(top.atEnd());
    }
    // der: encoding is canonical (same values -> same bytes).
    {
        auto encode = []() {
            DerWriter w;
            w.beginSequence();
            w.putUint(999);
            w.putString("x");
            w.endSequence();
            return w.finish();
        };
        CHECK(encode() == encode());
    }

    return TEST_MAIN_RESULT();
}
