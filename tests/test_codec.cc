/** Round-trips of the zip block compressor and DER serialization. */

#include "test_util.hh"

#include "codec/der.hh"
#include "codec/zip.hh"

int
main()
{
    using namespace lp;
    using namespace lptest;

    // zip: compressible data round-trips and actually shrinks.
    {
        Blob data(128 * 1024);
        Rng rng(3, "zip");
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] =
                static_cast<std::uint8_t>((i >> 4) ^ (rng.next() & 3));
        const Blob z = zipCompress(data);
        CHECK(z.size() < data.size());
        CHECK(zipDecompress(z) == data);
    }
    // zip: incompressible data still round-trips.
    {
        Blob data(4096);
        Rng rng(4, "zip-rand");
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        CHECK(zipDecompress(zipCompress(data)) == data);
    }
    // zip: tiny and empty inputs.
    {
        CHECK(zipDecompress(zipCompress({})).empty());
        const Blob one{42};
        CHECK(zipDecompress(zipCompress(one)) == one);
    }
    // zip: determinism (the library's compressed sizes must be
    // reproducible run to run).
    {
        Blob data(10000, 7);
        CHECK(zipCompress(data) == zipCompress(data));
    }
    // zipDecompressInto: reuses the caller's buffer across calls and
    // matches zipDecompress, including overlapping (RLE-style)
    // matches where the copy source overruns into the copy itself.
    {
        Blob rle(5000, 9); // long runs -> offset < match length
        Blob mixed(64 * 1024);
        Rng rng(5, "zip-into");
        for (std::size_t i = 0; i < mixed.size(); ++i)
            mixed[i] =
                static_cast<std::uint8_t>((i >> 6) ^ (rng.next() & 1));
        Blob out;
        for (const Blob *data : {&rle, &mixed, &rle}) {
            const Blob z = zipCompress(*data);
            zipDecompressInto(z, out); // recycled across iterations
            CHECK(out == *data);
            CHECK(zipDecompress(z) == *data);
        }
    }

    // zip: overlapping (RLE-style) matches at every short period.
    // Period-p data compresses to matches with offset p (1..4), the
    // offsets whose decompression copy source overlaps its
    // destination.
    {
        for (unsigned period = 1; period <= 4; ++period) {
            Blob data(3000 + period * 17);
            for (std::size_t i = 0; i < data.size(); ++i)
                data[i] = static_cast<std::uint8_t>(
                    0x20 + (i % period) * 31);
            const Blob z = zipCompress(data);
            CHECK(z.size() < data.size() / 8);
            CHECK(zipDecompress(z) == data);
        }
    }
    // zip: matches straddling the 64KiB window boundary. A unique
    // 32-byte block recurs at distances 65535 (the farthest encodable
    // offset) and 65536+ (outside the window, must not be matched);
    // both buffers must round-trip exactly.
    {
        Rng rng(6, "zip-window");
        for (const std::size_t gap : {std::size_t{65535} - 32,
                                      std::size_t{65536} - 32,
                                      std::size_t{70000}}) {
            Blob data;
            Blob block(32);
            for (auto &b : block)
                b = static_cast<std::uint8_t>(rng.next());
            data.insert(data.end(), block.begin(), block.end());
            // Incompressible filler so the only long match is the
            // recurring block.
            for (std::size_t i = 0; i < gap; ++i)
                data.push_back(static_cast<std::uint8_t>(rng.next()));
            data.insert(data.end(), block.begin(), block.end());
            for (std::size_t i = 0; i < 500; ++i)
                data.push_back(static_cast<std::uint8_t>(rng.next()));
            CHECK(zipDecompress(zipCompress(data)) == data);
        }
    }
    // zip: structure shifted by less than a match length — the
    // in-match hash insertions find these; positions inside an
    // emitted match must still seed future matches.
    {
        Blob unit(96);
        for (std::size_t i = 0; i < unit.size(); ++i)
            unit[i] = static_cast<std::uint8_t>(i * 7 + 3);
        Blob data;
        for (unsigned rep = 0; rep < 40; ++rep) {
            data.push_back(static_cast<std::uint8_t>(rep)); // misalign
            data.insert(data.end(), unit.begin(), unit.end());
        }
        const Blob z = zipCompress(data);
        CHECK(z.size() < data.size() / 4);
        CHECK(zipDecompress(z) == data);
    }
    // zip: ratio regression guard on a canned live-point payload —
    // the workload the codec exists for. The greedy single-entry
    // table this matcher replaced landed at 0.669 on this exact
    // point; the hash-chain matcher must stay strictly below that.
    {
        const TinyLib t = buildTinyLibrary("codec-ratio", 120'000, 3, 8);
        const Blob raw = t.lib.get(t.lib.size() / 2).serialize();
        const Blob z = zipCompress(raw);
        CHECK(zipDecompress(z) == raw);
        const double ratio = static_cast<double>(z.size()) /
                             static_cast<double>(raw.size());
        if (ratio > 0.66)
            std::fprintf(stderr, "live-point ratio %.4f\n", ratio);
        CHECK(ratio <= 0.66);
    }

    // der: nested sequences with every value type.
    {
        DerWriter w;
        w.beginSequence();
        w.putUint(0);
        w.putUint(127);
        w.putUint(0xdeadbeefcafeull);
        w.putString("live-points");
        w.putBytes(Blob{1, 2, 3});
        w.beginSequence();
        for (int i = 0; i < 300; ++i) // force a long-form length
            w.putUint(static_cast<std::uint64_t>(i) * 77);
        w.endSequence();
        w.putDouble(3.14159);
        w.endSequence();
        const Blob data = w.finish();

        DerReader top(data);
        DerReader seq = top.getSequence();
        CHECK_EQ(seq.getUint(), 0u);
        CHECK_EQ(seq.getUint(), 127u);
        CHECK_EQ(seq.getUint(), 0xdeadbeefcafeull);
        CHECK(seq.getString() == "live-points");
        CHECK(seq.getBytes() == (Blob{1, 2, 3}));
        DerReader inner = seq.getSequence();
        std::uint64_t i = 0;
        while (!inner.atEnd())
            CHECK_EQ(inner.getUint(), (i++) * 77);
        CHECK_EQ(i, 300u);
        CHECK_NEAR(seq.getDouble(), 3.14159, 0.0);
        CHECK(seq.atEnd());
        CHECK(top.atEnd());
    }
    // der: encoding is canonical (same values -> same bytes).
    {
        auto encode = []() {
            DerWriter w;
            w.beginSequence();
            w.putUint(999);
            w.putString("x");
            w.endSequence();
            return w.finish();
        };
        CHECK(encode() == encode());
    }

    return TEST_MAIN_RESULT();
}
