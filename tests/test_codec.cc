/** Round-trips of the zip block compressor and DER serialization. */

#include "harness.hh"

#include "codec/der.hh"
#include "codec/zip.hh"
#include "util/rng.hh"

int
main()
{
    using namespace lp;

    // zip: compressible data round-trips and actually shrinks.
    {
        Blob data(128 * 1024);
        Rng rng(3, "zip");
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] =
                static_cast<std::uint8_t>((i >> 4) ^ (rng.next() & 3));
        const Blob z = zipCompress(data);
        CHECK(z.size() < data.size());
        CHECK(zipDecompress(z) == data);
    }
    // zip: incompressible data still round-trips.
    {
        Blob data(4096);
        Rng rng(4, "zip-rand");
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        CHECK(zipDecompress(zipCompress(data)) == data);
    }
    // zip: tiny and empty inputs.
    {
        CHECK(zipDecompress(zipCompress({})).empty());
        const Blob one{42};
        CHECK(zipDecompress(zipCompress(one)) == one);
    }
    // zip: determinism (the library's compressed sizes must be
    // reproducible run to run).
    {
        Blob data(10000, 7);
        CHECK(zipCompress(data) == zipCompress(data));
    }
    // zipDecompressInto: reuses the caller's buffer across calls and
    // matches zipDecompress, including overlapping (RLE-style)
    // matches where the copy source overruns into the copy itself.
    {
        Blob rle(5000, 9); // long runs -> offset < match length
        Blob mixed(64 * 1024);
        Rng rng(5, "zip-into");
        for (std::size_t i = 0; i < mixed.size(); ++i)
            mixed[i] =
                static_cast<std::uint8_t>((i >> 6) ^ (rng.next() & 1));
        Blob out;
        for (const Blob *data : {&rle, &mixed, &rle}) {
            const Blob z = zipCompress(*data);
            zipDecompressInto(z, out); // recycled across iterations
            CHECK(out == *data);
            CHECK(zipDecompress(z) == *data);
        }
    }

    // der: nested sequences with every value type.
    {
        DerWriter w;
        w.beginSequence();
        w.putUint(0);
        w.putUint(127);
        w.putUint(0xdeadbeefcafeull);
        w.putString("live-points");
        w.putBytes(Blob{1, 2, 3});
        w.beginSequence();
        for (int i = 0; i < 300; ++i) // force a long-form length
            w.putUint(static_cast<std::uint64_t>(i) * 77);
        w.endSequence();
        w.putDouble(3.14159);
        w.endSequence();
        const Blob data = w.finish();

        DerReader top(data);
        DerReader seq = top.getSequence();
        CHECK_EQ(seq.getUint(), 0u);
        CHECK_EQ(seq.getUint(), 127u);
        CHECK_EQ(seq.getUint(), 0xdeadbeefcafeull);
        CHECK(seq.getString() == "live-points");
        CHECK(seq.getBytes() == (Blob{1, 2, 3}));
        DerReader inner = seq.getSequence();
        std::uint64_t i = 0;
        while (!inner.atEnd())
            CHECK_EQ(inner.getUint(), (i++) * 77);
        CHECK_EQ(i, 300u);
        CHECK_NEAR(seq.getDouble(), 3.14159, 0.0);
        CHECK(seq.atEnd());
        CHECK(top.atEnd());
    }
    // der: encoding is canonical (same values -> same bytes).
    {
        auto encode = []() {
            DerWriter w;
            w.beginSequence();
            w.putUint(999);
            w.putString("x");
            w.endSequence();
            return w.finish();
        };
        CHECK(encode() == encode());
    }

    return TEST_MAIN_RESULT();
}
