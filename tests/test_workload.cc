/** Same-seed reproducibility of programs and functional execution. */

#include "harness.hh"

#include "func/functional.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace lp;

    const WorkloadProfile profile = tinyProfile(300'000, 11);

    // generateProgram is deterministic: identical streams.
    {
        const Program a = generateProgram(profile);
        const Program b = generateProgram(profile);
        CHECK_EQ(a.length, b.length);
        CHECK(measureProgramLength(a) == a.length);
        for (InstCount i = 0; i < a.length; i += 97) {
            const Instruction x = a.fetch(i);
            const Instruction y = b.fetch(i);
            CHECK(x.op == y.op);
            CHECK_EQ(x.pc, y.pc);
            CHECK_EQ(x.addr, y.addr);
            CHECK(x.taken == y.taken);
        }
    }

    // Different seeds give different streams.
    {
        WorkloadProfile other = profile;
        other.seed = 12;
        const Program a = generateProgram(profile);
        const Program b = generateProgram(other);
        bool anyDiff = false;
        for (InstCount i = 0; i < a.length && !anyDiff; i += 13) {
            const Instruction x = a.fetch(i);
            const Instruction y = b.fetch(i);
            anyDiff = x.op != y.op || x.addr != y.addr;
        }
        CHECK(anyDiff);
    }

    // Two functional runs land in identical architectural state, and
    // fetch() is consistent with resumption from any point.
    {
        const Program prog = generateProgram(profile);
        FunctionalSimulator a(prog);
        FunctionalSimulator b(prog);
        a.run(prog.length);
        b.run(prog.length / 3);
        b.run(prog.length); // clamps at program end
        CHECK(a.finished() && b.finished());
        CHECK_EQ(a.regs().instIndex, b.regs().instIndex);
        for (int i = 0; i < 32; ++i)
            CHECK_EQ(a.regs().r[i], b.regs().r[i]);
        CHECK_EQ(a.memory().footprintBytes(),
                 b.memory().footprintBytes());
    }

    // ArchRegs serialization round-trips.
    {
        const Program prog = generateProgram(profile);
        FunctionalSimulator sim(prog);
        sim.run(12345);
        const Blob data = sim.regs().serialize();
        DerReader r(data);
        const ArchRegs back = ArchRegs::deserialize(r);
        CHECK_EQ(back.instIndex, sim.regs().instIndex);
        for (int i = 0; i < 32; ++i)
            CHECK_EQ(back.r[i], sim.regs().r[i]);
    }

    // The instruction mix roughly matches the profile.
    {
        const Program prog = generateProgram(profile);
        InstCount mem = 0;
        InstCount branches = 0;
        const InstCount probe = std::min<InstCount>(prog.length, 100'000);
        for (InstCount i = 0; i < probe; ++i) {
            const Instruction ins = prog.fetch(i);
            if (ins.isMem())
                ++mem;
            if (ins.isBranch())
                ++branches;
        }
        const double memFrac =
            static_cast<double>(mem) / static_cast<double>(probe);
        const double brFrac =
            static_cast<double>(branches) / static_cast<double>(probe);
        CHECK(memFrac > 0.15 && memFrac < 0.60);
        CHECK(brFrac > 0.05 && brFrac < 0.40);
    }

    return TEST_MAIN_RESULT();
}
