/**
 * The replay engine's contract: pooled, reused contexts reproduce
 * fresh-context results exactly, and the block-synchronous runners
 * produce bit-identical estimates at every thread count — with and
 * without early stopping, which must stop at the same block prefix
 * everywhere. The storage matrix: every backend (in-memory arena,
 * owned-buffer load, mmap load) and the resident-budget streaming
 * mode must reproduce the same bits at threads 1/2/4, stopping
 * included.
 */

#include "test_util.hh"

#include <cstdio>
#include <string>
#include <vector>

#include "core/replay.hh"
#include "core/runners.hh"
#include "core/stratified.hh"

int
main()
{
    using namespace lp;
    using namespace lptest;

    const CoreConfig cfg = baseConfig();
    TinyLib t = buildTinyLibrary("replaytest", 500'000, 17, 64, {cfg},
                                 11);
    const Program &prog = t.prog;
    LivePointLibrary &lib = t.lib;

    // (a) One pooled context reused across every point reproduces the
    // fresh-context result exactly, in any visit order.
    {
        ReplayContext pooled(prog, cfg);
        for (std::size_t pass = 0; pass < 2; ++pass) {
            for (std::size_t i = 0; i < lib.size(); ++i) {
                const std::size_t pos =
                    pass ? lib.size() - 1 - i : i;
                const LivePoint point = lib.get(pos);
                const WindowResult fresh =
                    simulateLivePoint(prog, point, cfg);
                const WindowResult reused = pooled.simulate(point);
                CHECK_NEAR(reused.cpi, fresh.cpi, 0.0);
                CHECK_EQ(reused.insts, fresh.insts);
                CHECK_EQ(reused.cycles, fresh.cycles);
                CHECK_EQ(reused.unavailableLoads,
                         fresh.unavailableLoads);
            }
        }
    }

    // decodeInto with recycled buffers matches get().
    {
        Blob scratch;
        LivePoint reused;
        for (std::size_t i = 0; i < lib.size(); ++i) {
            lib.decodeInto(i, scratch, reused);
            const LivePoint fresh = lib.get(i);
            CHECK(reused.serialize() == fresh.serialize());
        }
    }

    // (b) runLivePoints is bit-identical across thread counts, with
    // and without early stopping.
    {
        for (const bool stopping : {false, true}) {
            LivePointRunOptions ref;
            ref.threads = 1;
            ref.shuffleSeed = 5;
            ref.recordTrajectory = true;
            ref.stopAtConfidence = stopping;
            ref.blockSize = 8;
            // Loose target so stopping fires inside the library.
            ref.spec = ConfidenceSpec{0.95, 0.20};
            const LivePointRunResult base =
                runLivePoints(prog, lib, cfg, ref);
            CHECK(base.processed > 0);
            if (stopping) {
                // (c) early stopping must cut the run at a block
                // barrier before the end of the library.
                CHECK(base.processed < lib.size());
                CHECK_EQ(base.processed % ref.blockSize, 0u);
            } else {
                CHECK_EQ(base.processed, lib.size());
            }
            for (const unsigned threads : {2u, 4u, 8u}) {
                LivePointRunOptions opt = ref;
                opt.threads = threads;
                const LivePointRunResult r =
                    runLivePoints(prog, lib, cfg, opt);
                CHECK_EQ(r.processed, base.processed);
                CHECK_NEAR(r.cpi(), base.cpi(), 0.0);
                CHECK_NEAR(r.finalSnapshot.relHalfWidth,
                           base.finalSnapshot.relHalfWidth, 0.0);
                CHECK_EQ(r.unavailableLoads, base.unavailableLoads);
                CHECK_EQ(r.trajectory.size(), base.trajectory.size());
                for (std::size_t i = 0; i < r.trajectory.size(); ++i) {
                    CHECK_NEAR(r.trajectory[i].mean,
                               base.trajectory[i].mean, 0.0);
                    CHECK_NEAR(r.trajectory[i].relHalfWidth,
                               base.trajectory[i].relHalfWidth, 0.0);
                }
            }
        }
    }

    // The block-folded estimate matches a plain sequential fold of
    // the same observations (merge adds no statistical bias).
    {
        LivePointRunOptions opt;
        const LivePointRunResult r = runLivePoints(prog, lib, cfg, opt);
        RunningStat direct;
        for (std::size_t i = 0; i < lib.size(); ++i)
            direct.add(simulateLivePoint(prog, lib.get(i), cfg).cpi);
        CHECK_NEAR(r.cpi(), direct.mean(), 1e-12);
    }

    // Matched pairs: identical across thread counts, including the
    // block-synchronous stopping point.
    {
        const CoreConfig slow = slowMemConfig();
        LivePointRunOptions ref;
        ref.stopAtConfidence = true;
        ref.blockSize = 8;
        const MatchedPairOutcome base =
            runMatchedPair(prog, lib, cfg, slow, ref);
        CHECK(base.result.meanDelta > 0.0);
        for (const unsigned threads : {2u, 4u}) {
            LivePointRunOptions opt = ref;
            opt.threads = threads;
            const MatchedPairOutcome r =
                runMatchedPair(prog, lib, cfg, slow, opt);
            CHECK_EQ(r.processed, base.processed);
            CHECK_NEAR(r.result.meanDelta, base.result.meanDelta, 0.0);
            CHECK_NEAR(r.result.deltaHalfWidth,
                       base.result.deltaHalfWidth, 0.0);
            CHECK_EQ(r.pairedSampleSize, base.pairedSampleSize);
        }
    }

    // Storage matrix: a loaded library must replay bit-identically to
    // the in-memory build through every backend, with and without a
    // resident budget, at every thread count — the storage layer may
    // decide where bytes live, never what the estimate is.
    {
        const std::string path = "replaytest-backend.lpl";
        lib.save(path);

        std::vector<StorageBackend> backends{StorageBackend::buffer};
        if (mmapSupported() && !mmapDisabledByEnv())
            backends.push_back(StorageBackend::mapped);

        for (const bool stopping : {false, true}) {
            LivePointRunOptions ref;
            ref.shuffleSeed = 5;
            ref.stopAtConfidence = stopping;
            ref.blockSize = 8;
            ref.spec = ConfidenceSpec{0.95, 0.20};
            const LivePointRunResult base =
                runLivePoints(prog, lib, cfg, ref);

            for (const StorageBackend backend : backends) {
                const LivePointLibrary loaded =
                    LivePointLibrary::load(path, backend);
                CHECK_EQ(loaded.contentHash(), lib.contentHash());
                // Budgets from generous down to below one fold block
                // (the degenerate block-at-a-time stream); 0 = off.
                std::uint64_t window = 0;
                for (std::size_t i = 0; i < loaded.size(); ++i)
                    window += loaded.compressedSize(i) +
                              loaded.rawSize(i);
                for (const std::uint64_t budget :
                     {std::uint64_t{0}, window / 2, window / 4,
                      window / 16, std::uint64_t{1}}) {
                    for (const unsigned threads : {1u, 2u, 4u}) {
                        LivePointRunOptions opt = ref;
                        opt.threads = threads;
                        opt.residentBudgetBytes = budget;
                        const LivePointRunResult r =
                            runLivePoints(prog, loaded, cfg, opt);
                        CHECK_EQ(r.processed, base.processed);
                        CHECK_NEAR(r.cpi(), base.cpi(), 0.0);
                        CHECK_NEAR(r.finalSnapshot.relHalfWidth,
                                   base.finalSnapshot.relHalfWidth,
                                   0.0);
                        CHECK_EQ(r.unavailableLoads,
                                 base.unavailableLoads);
                        // A real budget must be respected whenever it
                        // admits at least one whole fold block.
                        if (budget >= window / 4)
                            CHECK(r.peakResidentBytes <=
                                  (budget ? budget : window));
                    }
                }
            }
        }

        // Matched pairs stream through a budget identically too.
        {
            const CoreConfig slow = slowMemConfig();
            LivePointRunOptions ref;
            ref.stopAtConfidence = true;
            ref.blockSize = 8;
            const MatchedPairOutcome base =
                runMatchedPair(prog, lib, cfg, slow, ref);
            const LivePointLibrary loaded =
                LivePointLibrary::load(path);
            for (const unsigned threads : {1u, 2u}) {
                LivePointRunOptions opt = ref;
                opt.threads = threads;
                opt.residentBudgetBytes = 64 * 1024;
                const MatchedPairOutcome r =
                    runMatchedPair(prog, loaded, cfg, slow, opt);
                CHECK_EQ(r.processed, base.processed);
                CHECK_NEAR(r.result.meanDelta, base.result.meanDelta,
                           0.0);
                CHECK_NEAR(r.result.deltaHalfWidth,
                           base.result.deltaHalfWidth, 0.0);
            }
        }
        std::remove(path.c_str());
    }

    // Checkpoint economics: a dictionary+delta library must replay
    // bit-identically to the plain library — same program, same
    // design, same shuffle — through every backend, at threads 1/2/4,
    // with and without a resident budget. Delta records charge their
    // whole chain against the budget, so the peak stays bounded even
    // though decoding a delta pins its base.
    {
        TinyLib tc = buildTinyLibrary(
            "replaytest", 500'000, 17, 64, {cfg}, 11,
            [](LivePointBuilderConfig &bc) {
                bc.sharedDictionary = true;
                bc.deltaEncode = true;
            });
        const LivePointLibrary &clib = tc.lib;
        CHECK(clib.deltaCount() > 0);
        CHECK_EQ(clib.size(), lib.size());

        const std::string path = "replaytest-cross.lpl";
        clib.save(path);

        std::vector<StorageBackend> backends{StorageBackend::buffer};
        if (mmapSupported() && !mmapDisabledByEnv())
            backends.push_back(StorageBackend::mapped);

        for (const bool stopping : {false, true}) {
            LivePointRunOptions ref;
            ref.shuffleSeed = 5;
            ref.stopAtConfidence = stopping;
            ref.blockSize = 8;
            ref.spec = ConfidenceSpec{0.95, 0.20};
            // The reference is the *plain* library: encoding must
            // never change an estimate, only where bytes live.
            const LivePointRunResult base =
                runLivePoints(prog, lib, cfg, ref);

            for (const StorageBackend backend : backends) {
                const LivePointLibrary loaded =
                    LivePointLibrary::load(path, backend);
                CHECK_EQ(loaded.contentHash(), clib.contentHash());
                CHECK(loaded.deltaCount() > 0);
                // Budget sized off the chain charges (what the gate
                // actually accounts), from generous down to 4x under
                // the library's charge total; 0 = off.
                std::uint64_t window = 0;
                for (std::size_t i = 0; i < loaded.size(); ++i)
                    window += loaded.chargeBytes(i);
                for (const std::uint64_t budget :
                     {std::uint64_t{0}, window / 2, window / 4}) {
                    for (const unsigned threads : {1u, 2u, 4u}) {
                        LivePointRunOptions opt = ref;
                        opt.threads = threads;
                        opt.residentBudgetBytes = budget;
                        const LivePointRunResult r =
                            runLivePoints(prog, loaded, cfg, opt);
                        CHECK_EQ(r.processed, base.processed);
                        CHECK_NEAR(r.cpi(), base.cpi(), 0.0);
                        CHECK_NEAR(r.finalSnapshot.relHalfWidth,
                                   base.finalSnapshot.relHalfWidth,
                                   0.0);
                        CHECK_EQ(r.unavailableLoads,
                                 base.unavailableLoads);
                        if (budget >= window / 4)
                            CHECK(r.peakResidentBytes <=
                                  (budget ? budget : window));
                    }
                }
            }
        }
        std::remove(path.c_str());
    }

    // Stratified: the parallel pilot leaves every greedy decision —
    // and so the whole outcome — unchanged.
    {
        StratifiedOptions ref;
        ref.spec = ConfidenceSpec{0.997, 0.10};
        const StratifiedResult base =
            runStratified(prog, lib, cfg, ref);
        CHECK(base.processed > 0);
        for (const unsigned threads : {2u, 4u}) {
            StratifiedOptions opt = ref;
            opt.threads = threads;
            const StratifiedResult r =
                runStratified(prog, lib, cfg, opt);
            CHECK_EQ(r.processed, base.processed);
            CHECK_NEAR(r.mean, base.mean, 0.0);
            CHECK_NEAR(r.relHalfWidth, base.relHalfWidth, 0.0);
        }
    }

    return TEST_MAIN_RESULT();
}
