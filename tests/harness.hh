/**
 * @file
 * Minimal assertion harness for the ctest suite: CHECK/CHECK_NEAR
 * record failures and the test's main() returns nonzero if any fired.
 */

#ifndef LP_TESTS_HARNESS_HH
#define LP_TESTS_HARNESS_HH

#include <cmath>
#include <cstdio>

inline int lpTestFailures = 0;

#define CHECK(cond)                                                       \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, \
                         #cond);                                          \
            ++lpTestFailures;                                             \
        }                                                                 \
    } while (0)

#define CHECK_EQ(a, b)                                                    \
    do {                                                                  \
        if (!((a) == (b))) {                                              \
            std::fprintf(stderr, "FAIL %s:%d: %s == %s\n", __FILE__,     \
                         __LINE__, #a, #b);                               \
            ++lpTestFailures;                                             \
        }                                                                 \
    } while (0)

#define CHECK_NEAR(a, b, eps)                                             \
    do {                                                                  \
        const double va_ = (a);                                           \
        const double vb_ = (b);                                           \
        if (!(std::fabs(va_ - vb_) <= (eps))) {                           \
            std::fprintf(stderr,                                          \
                         "FAIL %s:%d: |%s - %s| = |%g - %g| > %g\n",     \
                         __FILE__, __LINE__, #a, #b, va_, vb_,            \
                         static_cast<double>(eps));                       \
            ++lpTestFailures;                                             \
        }                                                                 \
    } while (0)

#define TEST_MAIN_RESULT()                                                \
    (lpTestFailures ? (std::fprintf(stderr, "%d check(s) failed\n",      \
                                    lpTestFailures),                      \
                       1)                                                 \
                    : (std::printf("all checks passed\n"), 0))

#endif // LP_TESTS_HARNESS_HH
