/**
 * @file
 * Shared fixtures for the ctest suites: the tiny-library builder
 * boilerplate every replay-facing test repeats, common configuration
 * presets, and tolerance/throw assertions on top of harness.hh. Test
 * binaries stay single-file; this header is the one place fixture
 * conventions live.
 */

#ifndef LP_TESTS_TEST_UTIL_HH
#define LP_TESTS_TEST_UTIL_HH

#include "harness.hh"

#include <cctype>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/builder.hh"
#include "core/library.hh"
#include "uarch/config.hh"
#include "util/rng.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

/** |a - b| <= rel * |b| (relative tolerance against the reference). */
#define CHECK_REL(a, b, rel)                                              \
    do {                                                                  \
        const double ra_ = (a);                                           \
        const double rb_ = (b);                                           \
        if (!(std::fabs(ra_ - rb_) <= (rel)*std::fabs(rb_))) {            \
            std::fprintf(stderr,                                          \
                         "FAIL %s:%d: |%s - %s| = |%g - %g| > %g rel\n", \
                         __FILE__, __LINE__, #a, #b, ra_, rb_,            \
                         static_cast<double>(rel));                       \
            ++lpTestFailures;                                             \
        }                                                                 \
    } while (0)

/** The expression must throw a std::exception (any derived type). */
#define CHECK_THROWS(expr)                                                \
    do {                                                                  \
        bool threw_ = false;                                              \
        try {                                                             \
            (void)(expr);                                                 \
        } catch (const std::exception &) {                                \
            threw_ = true;                                                \
        }                                                                 \
        if (!threw_) {                                                    \
            std::fprintf(stderr, "FAIL %s:%d: %s did not throw\n",       \
                         __FILE__, __LINE__, #expr);                      \
            ++lpTestFailures;                                             \
        }                                                                 \
    } while (0)

namespace lptest
{

/** A generated benchmark with a systematic design laid over it. */
struct TinyBench
{
    lp::WorkloadProfile profile;
    lp::Program prog;
    lp::InstCount length = 0;
    lp::SampleDesign design;
};

/**
 * Generate a tiny deterministic benchmark and its design: @p windows
 * measured windows of 1000 instructions, warmed per @p warmLen
 * (default: the 8-way baseline's detailed warming).
 */
inline TinyBench
makeTinyBench(const std::string &name, lp::InstCount insts,
              std::uint64_t seed, std::uint64_t windows,
              lp::InstCount warmLen = 0)
{
    TinyBench t;
    t.profile = lp::tinyProfile(insts, seed);
    t.profile.name = name;
    t.prog = lp::generateProgram(t.profile);
    t.length = lp::measureProgramLength(t.prog);
    t.design = lp::SampleDesign::systematic(
        t.length, windows, 1000,
        warmLen ? warmLen : lp::CoreConfig::eightWay().detailedWarming);
    return t;
}

/** A generated benchmark with a built live-point library. */
struct TinyLib
{
    lp::WorkloadProfile profile;
    lp::Program prog;
    lp::InstCount length = 0;
    lp::SampleDesign design;
    lp::LivePointLibrary lib;
};

/**
 * The standard test fixture: generate a tiny deterministic benchmark,
 * lay a systematic design over it, and build its live-point library
 * covering every predictor in @p cfgs (all of @p cfgs must share the
 * detailed-warming length of cfgs[0], which sizes the windows).
 * @p shuffleSeed != 0 also shuffles the library. @p tweak (optional)
 * edits the builder configuration before the build — the hook the
 * dictionary/delta and threading variants use.
 */
inline TinyLib
buildTinyLibrary(
    const std::string &name, lp::InstCount insts, std::uint64_t seed,
    std::uint64_t windows,
    const std::vector<lp::CoreConfig> &cfgs =
        {lp::CoreConfig::eightWay()},
    std::uint64_t shuffleSeed = 0,
    const std::function<void(lp::LivePointBuilderConfig &)> &tweak = {})
{
    TinyLib t;
    TinyBench b = makeTinyBench(name, insts, seed, windows,
                                cfgs.front().detailedWarming);
    t.profile = std::move(b.profile);
    t.prog = std::move(b.prog);
    t.length = b.length;
    t.design = b.design;
    lp::LivePointBuilderConfig bc;
    bc.bpredConfigs.clear();
    for (const lp::CoreConfig &c : cfgs) {
        bool seen = false;
        for (const lp::BpredConfig &have : bc.bpredConfigs)
            seen = seen || have.key() == c.bpred.key();
        if (!seen)
            bc.bpredConfigs.push_back(c.bpred);
    }
    if (tweak)
        tweak(bc);
    lp::LivePointBuilder builder(bc);
    t.lib = builder.build(t.prog, t.design);
    if (shuffleSeed) {
        lp::Rng rng(shuffleSeed, "test-shuffle");
        t.lib.shuffle(rng);
    }
    return t;
}

/** The paper's 8-way baseline (Table 1). */
inline lp::CoreConfig
baseConfig()
{
    return lp::CoreConfig::eightWay();
}

/** The baseline with plainly slower memory — a surely-visible delta. */
inline lp::CoreConfig
slowMemConfig()
{
    lp::CoreConfig c = lp::CoreConfig::eightWay();
    c.name = "slow-mem";
    c.mem.memLatency = 400;
    c.mem.l2Latency = 40;
    return c;
}

namespace jsondetail
{

struct JsonCursor
{
    const char *p;
    const char *e;
};

inline void
jvSkipWs(JsonCursor &c)
{
    while (c.p < c.e && (*c.p == ' ' || *c.p == '\t' ||
                         *c.p == '\n' || *c.p == '\r'))
        ++c.p;
}

inline bool
jvString(JsonCursor &c)
{
    if (c.p >= c.e || *c.p != '"')
        return false;
    ++c.p;
    while (c.p < c.e) {
        const unsigned char u = static_cast<unsigned char>(*c.p);
        if (u == '"') {
            ++c.p;
            return true;
        }
        if (u < 0x20)
            return false; // raw control byte: must be \uXXXX-escaped
        if (u == '\\') {
            ++c.p;
            if (c.p >= c.e)
                return false;
            const char esc = *c.p;
            if (esc == '"' || esc == '\\' || esc == '/' ||
                esc == 'b' || esc == 'f' || esc == 'n' ||
                esc == 'r' || esc == 't') {
                ++c.p;
                continue;
            }
            if (esc == 'u') {
                ++c.p;
                for (int i = 0; i < 4; ++i, ++c.p)
                    if (c.p >= c.e ||
                        !std::isxdigit(
                            static_cast<unsigned char>(*c.p)))
                        return false;
                continue;
            }
            return false;
        }
        ++c.p;
    }
    return false;
}

inline bool
jvNumber(JsonCursor &c)
{
    if (c.p < c.e && *c.p == '-')
        ++c.p;
    if (c.p >= c.e || !std::isdigit(static_cast<unsigned char>(*c.p)))
        return false;
    if (*c.p == '0')
        ++c.p;
    else
        while (c.p < c.e &&
               std::isdigit(static_cast<unsigned char>(*c.p)))
            ++c.p;
    if (c.p < c.e && *c.p == '.') {
        ++c.p;
        if (c.p >= c.e ||
            !std::isdigit(static_cast<unsigned char>(*c.p)))
            return false;
        while (c.p < c.e &&
               std::isdigit(static_cast<unsigned char>(*c.p)))
            ++c.p;
    }
    if (c.p < c.e && (*c.p == 'e' || *c.p == 'E')) {
        ++c.p;
        if (c.p < c.e && (*c.p == '+' || *c.p == '-'))
            ++c.p;
        if (c.p >= c.e ||
            !std::isdigit(static_cast<unsigned char>(*c.p)))
            return false;
        while (c.p < c.e &&
               std::isdigit(static_cast<unsigned char>(*c.p)))
            ++c.p;
    }
    return true;
}

inline bool
jvLiteral(JsonCursor &c, const char *lit)
{
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(c.e - c.p) < n ||
        std::strncmp(c.p, lit, n) != 0)
        return false;
    c.p += n;
    return true;
}

inline bool
jvValue(JsonCursor &c, int depth)
{
    if (depth > 64)
        return false;
    jvSkipWs(c);
    if (c.p >= c.e)
        return false;
    const char ch = *c.p;
    if (ch == '{') {
        ++c.p;
        jvSkipWs(c);
        if (c.p < c.e && *c.p == '}') {
            ++c.p;
            return true;
        }
        for (;;) {
            jvSkipWs(c);
            if (!jvString(c))
                return false;
            jvSkipWs(c);
            if (c.p >= c.e || *c.p != ':')
                return false;
            ++c.p;
            if (!jvValue(c, depth + 1))
                return false;
            jvSkipWs(c);
            if (c.p >= c.e)
                return false;
            if (*c.p == ',') {
                ++c.p;
                continue;
            }
            if (*c.p == '}') {
                ++c.p;
                return true;
            }
            return false;
        }
    }
    if (ch == '[') {
        ++c.p;
        jvSkipWs(c);
        if (c.p < c.e && *c.p == ']') {
            ++c.p;
            return true;
        }
        for (;;) {
            if (!jvValue(c, depth + 1))
                return false;
            jvSkipWs(c);
            if (c.p >= c.e)
                return false;
            if (*c.p == ',') {
                ++c.p;
                continue;
            }
            if (*c.p == ']') {
                ++c.p;
                return true;
            }
            return false;
        }
    }
    if (ch == '"')
        return jvString(c);
    if (ch == 't')
        return jvLiteral(c, "true");
    if (ch == 'f')
        return jvLiteral(c, "false");
    if (ch == 'n')
        return jvLiteral(c, "null");
    return jvNumber(c);
}

} // namespace jsondetail

/**
 * Strict RFC 8259 JSON validator: true iff @p s is exactly one valid
 * JSON value plus optional trailing whitespace. No extensions — raw
 * control bytes inside strings, bad escapes, trailing commas,
 * leading zeros, NaN/Infinity all fail. This is the picky parser the
 * campaign report must round-trip even with hostile failure details.
 */
inline bool
jsonValidate(const std::string &s)
{
    jsondetail::JsonCursor c{s.data(), s.data() + s.size()};
    if (!jsondetail::jvValue(c, 0))
        return false;
    jsondetail::jvSkipWs(c);
    return c.p == c.e;
}

} // namespace lptest

#endif // LP_TESTS_TEST_UTIL_HH
