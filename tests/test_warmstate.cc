/**
 * The exactness property live-points rely on: a CacheSetRecord taken
 * at a maximum geometry reconstructs a smaller target cache to
 * exactly the state direct warming would have produced.
 */

#include "harness.hh"

#include <algorithm>

#include "cache/cache.hh"
#include "cache/warmstate.hh"
#include "codec/zip.hh"
#include "util/rng.hh"

namespace
{

using namespace lp;

/** Compare full contents + LRU behaviour of two caches. */
bool
sameState(const CacheModel &a, const CacheModel &b)
{
    if (a.numSets() != b.numSets())
        return false;
    for (std::uint64_t s = 0; s < a.numSets(); ++s) {
        const auto &sa = a.linesOfSet(s);
        const auto &sb = b.linesOfSet(s);
        if (sa.size() != sb.size())
            return false;
        // Same tags, and same recency ordering.
        std::vector<std::pair<std::uint64_t, Addr>> oa;
        std::vector<std::pair<std::uint64_t, Addr>> ob;
        for (const CacheLine &l : sa)
            oa.emplace_back(l.lastAccess, l.tag);
        for (const CacheLine &l : sb)
            ob.emplace_back(l.lastAccess, l.tag);
        std::sort(oa.begin(), oa.end());
        std::sort(ob.begin(), ob.end());
        for (std::size_t i = 0; i < oa.size(); ++i)
            if (oa[i].second != ob[i].second)
                return false;
    }
    return true;
}

} // namespace

int
main()
{
    using namespace lp;

    // Warm a max cache and a (smaller) direct cache with the same
    // reference stream; reconstructing the small one from the max
    // CSR must reproduce its exact contents.
    const CacheGeometry maxGeom{4 * 1024 * 1024, 8, 128};
    const CacheGeometry smallGeom{1 * 1024 * 1024, 4, 128};
    {
        CacheModel maxCache(maxGeom, "max");
        CacheModel direct(smallGeom, "direct");
        Rng rng(21, "stream");
        for (int i = 0; i < 300'000; ++i) {
            const Addr a = rng.nextBounded(64ull << 20) & ~7ull;
            const bool write = rng.nextBool(0.3);
            maxCache.access(a, write);
            direct.access(a, write);
        }
        const CacheSetRecord csr(maxCache);
        CHECK(csr.entryCount() > 0);
        CHECK(csr.maxGeometry() == maxGeom);

        CacheModel rebuilt(smallGeom, "rebuilt");
        csr.reconstruct(rebuilt);
        CHECK(sameState(direct, rebuilt));

        // Same-geometry reconstruction is exact too.
        CacheModel same(maxGeom, "same");
        csr.reconstruct(same);
        CHECK(sameState(maxCache, same));

        // CSR round-trips through serialization byte-exactly.
        const Blob bytes = csr.serialize();
        DerReader r(bytes);
        const CacheSetRecord back = CacheSetRecord::deserialize(r);
        CHECK(back.serialize() == bytes);
        CacheModel rebuilt2(smallGeom, "rebuilt2");
        back.reconstruct(rebuilt2);
        CHECK(sameState(direct, rebuilt2));
    }

    // MTR reconstructs the same warm state as direct warming (it has
    // every touched line), while its storage grows with footprint.
    {
        MemoryTimestampRecord mtr(128);
        CacheModel direct(smallGeom, "direct");
        Rng rng(22, "mtr");
        std::uint64_t t = 0;
        for (int i = 0; i < 100'000; ++i) {
            const Addr a = rng.nextBounded(16ull << 20) & ~7ull;
            const bool write = rng.nextBool(0.25);
            mtr.record(a, write, t++);
            direct.access(a, write);
        }
        CacheModel rebuilt(smallGeom, "rebuilt");
        mtr.reconstruct(rebuilt);
        CHECK(sameState(direct, rebuilt));
        CHECK(mtr.entryCount() > 0);

        // Bigger footprint -> bigger MTR, CSR stays bounded.
        MemoryTimestampRecord mtrBig(128);
        CacheModel maxCache(maxGeom, "max");
        Rng rng2(23, "mtr-big");
        t = 0;
        for (int i = 0; i < 100'000; ++i) {
            const Addr a = rng2.nextBounded(64ull << 20) & ~7ull;
            mtrBig.record(a, false, t++);
            maxCache.access(a, false);
        }
        CHECK(mtrBig.serialize().size() > mtr.serialize().size());
        const CacheSetRecord csr(maxCache);
        CHECK(csr.entryCount() <= maxGeom.numLines());
    }

    return TEST_MAIN_RESULT();
}
