/**
 * Seeded fuzz coverage of the codec layer. Round-trips
 * zipCompress/zipDecompressInto and DER encode/decode over
 * Rng-generated buffers spanning the shapes live-points produce
 * (mixed runs, pure random, structured records, near-64KiB-window
 * sizes), then attacks the decoders: truncation at every byte must
 * raise a clean error, byte corruption must never crash or over-read
 * (the sanitizer CI job watches the memory side), and crafted
 * oversized varints must be rejected.
 */

#include "test_util.hh"

#include <cstring>

#include "codec/der.hh"
#include "codec/zip.hh"

namespace
{

using namespace lp;

/** Generate one fuzz buffer; the shape cycles with the index. */
Blob
fuzzBuffer(std::uint64_t i)
{
    Rng rng(i, "fuzz-codec");
    // Sizes sweep tiny buffers, mid sizes, and the 64KiB window edge.
    static const std::size_t sizes[] = {0,     1,     2,     7,
                                        64,    1000,  4096,  65534,
                                        65535, 65536, 65600, 70000};
    const std::size_t size = sizes[i % (sizeof(sizes) / sizeof(*sizes))];
    Blob out;
    out.reserve(size);
    switch (i % 3) {
      case 0: // mixed runs: random-length runs of random bytes
        while (out.size() < size) {
            const std::uint8_t v = static_cast<std::uint8_t>(rng.next());
            std::size_t len = 1 + rng.nextBounded(300);
            for (; len && out.size() < size; --len)
                out.push_back(v);
        }
        break;
      case 1: // pure random (incompressible)
        for (std::size_t j = 0; j < size; ++j)
            out.push_back(static_cast<std::uint8_t>(rng.next()));
        break;
      default: // structured: tag/counter records like DER payloads
        while (out.size() < size) {
            out.push_back(0x30);
            out.push_back(static_cast<std::uint8_t>(rng.nextBounded(4)));
            const std::uint64_t ctr = rng.nextBounded(1 << 16);
            out.push_back(static_cast<std::uint8_t>(ctr));
            out.push_back(static_cast<std::uint8_t>(ctr >> 8));
        }
        out.resize(size);
        break;
    }
    return out;
}

/** Decoding must throw or complete; crashes/over-reads are the bug. */
bool
decodeSurvives(const Blob &z, Blob &scratch)
{
    try {
        zipDecompressInto(z, scratch);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

/**
 * Differential check: the batched decoder and the retained reference
 * scalar decoder must agree on every input — byte-identical output
 * when both succeed, and both throwing when either rejects.
 */
void
checkAgainstReference(const std::uint8_t *data, std::size_t size,
                      Blob &fast, Blob &ref)
{
    bool fastOk = true;
    bool refOk = true;
    try {
        zipDecompressInto(data, size, fast);
    } catch (const std::exception &) {
        fastOk = false;
    }
    try {
        zipDecompressReferenceInto(data, size, ref);
    } catch (const std::exception &) {
        refOk = false;
    }
    CHECK_EQ(static_cast<int>(fastOk), static_cast<int>(refOk));
    if (fastOk && refOk)
        CHECK(fast == ref);
}

/** Differential check of the dictionary-primed decoders. */
void
checkDictAgainstReference(const std::uint8_t *data, std::size_t size,
                          ByteSpan dict, Blob &fast, Blob &ref)
{
    bool fastOk = true;
    bool refOk = true;
    try {
        zipDecompressInto(data, size, fast, dict);
    } catch (const std::exception &) {
        fastOk = false;
    }
    try {
        zipDecompressReferenceInto(data, size, ref, dict);
    } catch (const std::exception &) {
        refOk = false;
    }
    CHECK_EQ(static_cast<int>(fastOk), static_cast<int>(refOk));
    if (fastOk && refOk)
        CHECK(fast == ref);
}

/** Differential check of the delta-stream decoders. */
void
checkDeltaAgainstReference(const std::uint8_t *data, std::size_t size,
                           ByteSpan prev, Blob &fast, Blob &ref)
{
    bool fastOk = true;
    bool refOk = true;
    try {
        zipDecompressDeltaInto(data, size, prev, fast);
    } catch (const std::exception &) {
        fastOk = false;
    }
    try {
        zipDecompressDeltaReferenceInto(data, size, prev, ref);
    } catch (const std::exception &) {
        refOk = false;
    }
    CHECK_EQ(static_cast<int>(fastOk), static_cast<int>(refOk));
    if (fastOk && refOk)
        CHECK(fast == ref);
}

/**
 * A plausible predecessor payload: @p data with a few random edits
 * (overwrites, an insertion, a deletion) so delta compression sees
 * the section drift successive live-points actually exhibit.
 */
Blob
mutateBuffer(const Blob &data, std::uint64_t seed)
{
    Rng rng(seed, "fuzz-mutate");
    Blob prev = data;
    for (int e = 0; e < 6 && !prev.empty(); ++e) {
        const std::size_t at = rng.nextBounded(prev.size());
        switch (rng.nextBounded(3)) {
          case 0: // overwrite a short span
            for (std::size_t j = at;
                 j < std::min(prev.size(), at + 1 + rng.nextBounded(32));
                 ++j)
                prev[j] = static_cast<std::uint8_t>(rng.next());
            break;
          case 1: // insert a short run
            prev.insert(prev.begin() + static_cast<std::ptrdiff_t>(at),
                        1 + rng.nextBounded(64),
                        static_cast<std::uint8_t>(rng.next()));
            break;
          default: // delete a short span
            prev.erase(prev.begin() + static_cast<std::ptrdiff_t>(at),
                       prev.begin() + static_cast<std::ptrdiff_t>(std::min(
                                          prev.size(),
                                          at + 1 + rng.nextBounded(64))));
            break;
        }
    }
    return prev;
}

} // namespace

int
main()
{
    using namespace lp;

    // zip: round-trip every fuzz shape through both decompress paths,
    // and cross-check the batched decoder against the reference scalar
    // decoder on every generated buffer.
    Blob scratch;
    Blob refScratch;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const Blob data = fuzzBuffer(i);
        const Blob z = zipCompress(data);
        CHECK(zipDecompress(z) == data);
        zipDecompressInto(z, scratch); // recycled buffer across shapes
        CHECK(scratch == data);
        zipDecompressReferenceInto(z.data(), z.size(), refScratch);
        CHECK(refScratch == data);
    }

    // zip: truncation at every byte of a representative compressed
    // record must error, never crash, over-read, or "succeed" — and
    // the batched and reference decoders must agree at every cut.
    {
        const Blob data = fuzzBuffer(6); // mixed runs, 4096 bytes
        const Blob z = zipCompress(data);
        CHECK(z.size() > 16);
        for (std::size_t cut = 0; cut < z.size(); ++cut) {
            const Blob truncated(z.begin(),
                                 z.begin() +
                                     static_cast<std::ptrdiff_t>(cut));
            CHECK_THROWS(zipDecompressInto(truncated, scratch));
            CHECK_THROWS(zipDecompressReferenceInto(
                truncated.data(), truncated.size(), refScratch));
        }
    }

    // zip: single-byte corruption must never crash or over-read (a
    // flipped literal may legally decode to different content; a
    // mangled token must throw — either way, cleanly), and both
    // decoders must reach the same verdict with the same bytes.
    {
        const Blob data = fuzzBuffer(3); // runs, 7 -> small stream
        const Blob big = fuzzBuffer(9);  // runs, 65534
        for (const Blob *src : {&data, &big}) {
            const Blob z = zipCompress(*src);
            Rng rng(77, "fuzz-corrupt");
            const std::size_t flips = std::min<std::size_t>(z.size(),
                                                            400);
            for (std::size_t f = 0; f < flips; ++f) {
                Blob bad = z;
                const std::size_t at = rng.nextBounded(bad.size());
                bad[at] ^= static_cast<std::uint8_t>(
                    1 + rng.nextBounded(255));
                // Either outcome is fine; crashing is not.
                decodeSurvives(bad, scratch);
                checkAgainstReference(bad.data(), bad.size(), scratch,
                                      refScratch);
            }
        }
    }

    // zip: a crafted header declaring an enormous raw size must be
    // rejected (or fail cleanly) rather than over-allocate and crash.
    {
        Blob bomb;
        for (int j = 0; j < 9; ++j)
            bomb.push_back(0xff); // LEB128 continuation bytes
        bomb.push_back(0x7f);
        bomb.push_back(0x00); // one flag byte, no payload
        CHECK_THROWS(zipDecompressInto(bomb, scratch));
    }

    // zip+dict: dictionary-primed round-trips through both decoders,
    // over every fuzz shape, with a trained dictionary from sibling
    // shapes. An empty dictionary must reproduce the plain stream
    // byte-for-byte (the back-compat contract).
    for (std::uint64_t i = 0; i < 36; ++i) {
        const Blob data = fuzzBuffer(i);
        const Blob sib1 = fuzzBuffer(i + 3);
        const Blob sib2 = mutateBuffer(data, i);
        const Blob dict = zipTrainDictionary(
            {ByteSpan(sib1), ByteSpan(sib2)}, 32 * 1024);
        const Blob z = zipCompress(data, ByteSpan(dict));
        zipDecompressInto(z.data(), z.size(), scratch, ByteSpan(dict));
        CHECK(scratch == data);
        zipDecompressReferenceInto(z.data(), z.size(), refScratch,
                                   ByteSpan(dict));
        CHECK(refScratch == data);
        CHECK(zipCompress(data, ByteSpan()) == zipCompress(data));
        // A mismatched dictionary may decode to wrong bytes or throw;
        // both decoders must agree and neither may misbehave.
        const Blob other = zipTrainDictionary({ByteSpan(sib1)}, 4096);
        checkDictAgainstReference(z.data(), z.size(), ByteSpan(other),
                                  scratch, refScratch);
        checkDictAgainstReference(z.data(), z.size(), ByteSpan(),
                                  scratch, refScratch);
    }

    // zip+delta: delta streams against a drifted predecessor
    // round-trip through both decoders; decoding with the wrong (or
    // no) predecessor must fail cleanly or produce bytes — agreed on
    // by both decoders — never crash or over-read.
    for (std::uint64_t i = 0; i < 36; ++i) {
        const Blob data = fuzzBuffer(i);
        const Blob prev = mutateBuffer(data, 1000 + i);
        const Blob z = zipCompressDelta(data, ByteSpan(prev));
        zipDecompressDeltaInto(z.data(), z.size(), ByteSpan(prev),
                               scratch);
        CHECK(scratch == data);
        zipDecompressDeltaReferenceInto(z.data(), z.size(),
                                        ByteSpan(prev), refScratch);
        CHECK(refScratch == data);
        const Blob wrong = fuzzBuffer(i + 7);
        checkDeltaAgainstReference(z.data(), z.size(), ByteSpan(wrong),
                                   scratch, refScratch);
        checkDeltaAgainstReference(z.data(), z.size(), ByteSpan(),
                                   scratch, refScratch);
    }

    // zip+dict/delta: truncation at every byte must raise in both
    // decoders — a cut stream never silently "succeeds".
    {
        const Blob data = fuzzBuffer(30); // structured, 4096 bytes
        const Blob prev = mutateBuffer(data, 5);
        const Blob dict = zipTrainDictionary({ByteSpan(prev)}, 8192);
        const Blob zd = zipCompress(data, ByteSpan(dict));
        for (std::size_t cut = 0; cut < zd.size(); ++cut) {
            CHECK_THROWS(zipDecompressInto(zd.data(), cut, scratch,
                                           ByteSpan(dict)));
            CHECK_THROWS(zipDecompressReferenceInto(
                zd.data(), cut, refScratch, ByteSpan(dict)));
        }
        const Blob zt = zipCompressDelta(data, ByteSpan(prev));
        for (std::size_t cut = 0; cut < zt.size(); ++cut) {
            CHECK_THROWS(zipDecompressDeltaInto(
                zt.data(), cut, ByteSpan(prev), scratch));
            CHECK_THROWS(zipDecompressDeltaReferenceInto(
                zt.data(), cut, ByteSpan(prev), refScratch));
        }
    }

    // zip+dict/delta: byte-flip sweep. A flip may legally change
    // decoded content or trip a bounds check; it must never crash,
    // over-read, or split the decoders' verdicts. (The library layer
    // adds a raw checksum on top, so a flipped dict/delta record
    // fails loudly there — test_library covers that strictness.)
    {
        const Blob data = fuzzBuffer(18); // mixed runs, 4096
        const Blob prev = mutateBuffer(data, 9);
        const Blob dict = zipTrainDictionary({ByteSpan(prev)}, 8192);
        const Blob zd = zipCompress(data, ByteSpan(dict));
        const Blob zt = zipCompressDelta(data, ByteSpan(prev));
        Rng rng(99, "fuzz-corrupt-dict");
        for (std::size_t f = 0; f < 400; ++f) {
            Blob bad = zd;
            bad[rng.nextBounded(bad.size())] ^=
                static_cast<std::uint8_t>(1 + rng.nextBounded(255));
            checkDictAgainstReference(bad.data(), bad.size(),
                                      ByteSpan(dict), scratch,
                                      refScratch);
            Blob badDelta = zt;
            badDelta[rng.nextBounded(badDelta.size())] ^=
                static_cast<std::uint8_t>(1 + rng.nextBounded(255));
            checkDeltaAgainstReference(badDelta.data(), badDelta.size(),
                                       ByteSpan(prev), scratch,
                                       refScratch);
        }
        // Flipping *dictionary* or *predecessor* bytes (the other
        // corruption surface) must be just as contained.
        for (std::size_t f = 0; f < 200; ++f) {
            Blob badDict = dict;
            badDict[rng.nextBounded(badDict.size())] ^=
                static_cast<std::uint8_t>(1 + rng.nextBounded(255));
            checkDictAgainstReference(zd.data(), zd.size(),
                                      ByteSpan(badDict), scratch,
                                      refScratch);
            Blob badPrev = prev;
            badPrev[rng.nextBounded(badPrev.size())] ^=
                static_cast<std::uint8_t>(1 + rng.nextBounded(255));
            checkDeltaAgainstReference(zt.data(), zt.size(),
                                       ByteSpan(badPrev), scratch,
                                       refScratch);
        }
    }

    // der: random value trees round-trip exactly.
    for (std::uint64_t i = 0; i < 40; ++i) {
        Rng rng(i, "fuzz-der");
        const std::size_t count = 1 + rng.nextBounded(40);
        std::vector<unsigned> types;
        std::vector<std::uint64_t> uints;
        std::vector<std::string> strings;
        std::vector<Blob> blobs;
        DerWriter w;
        w.beginSequence();
        for (std::size_t j = 0; j < count; ++j) {
            types.push_back(
                static_cast<unsigned>(rng.nextBounded(3)));
            switch (types.back()) {
              case 0:
                uints.push_back(rng.next() >> rng.nextBounded(64));
                w.putUint(uints.back());
                break;
              case 1: {
                std::string s;
                for (std::size_t k = rng.nextBounded(300); k; --k)
                    s.push_back(static_cast<char>(
                        'a' + rng.nextBounded(26)));
                strings.push_back(s);
                w.putString(s);
                break;
              }
              default: {
                Blob b;
                for (std::size_t k = rng.nextBounded(300); k; --k)
                    b.push_back(
                        static_cast<std::uint8_t>(rng.next()));
                blobs.push_back(b);
                w.putBytes(blobs.back());
                break;
              }
            }
        }
        w.endSequence();
        const Blob data = w.finish();

        DerReader top(data);
        DerReader seq = top.getSequence();
        std::size_t iu = 0;
        std::size_t is = 0;
        std::size_t ib = 0;
        for (const unsigned type : types) {
            switch (type) {
              case 0:
                CHECK_EQ(seq.getUint(), uints[iu++]);
                break;
              case 1:
                CHECK(seq.getString() == strings[is++]);
                break;
              default:
                CHECK(seq.getBytes() == blobs[ib++]);
                break;
            }
        }
        CHECK(seq.atEnd());

        // Truncating the encoding anywhere must raise, never crash:
        // the typed read-back can no longer complete.
        for (std::size_t cut = 0; cut < data.size();
             cut += 1 + cut / 64) {
            const Blob t(data.begin(),
                         data.begin() +
                             static_cast<std::ptrdiff_t>(cut));
            bool threw = false;
            try {
                DerReader r(t);
                DerReader s2 = r.getSequence();
                for (const unsigned type : types) {
                    if (type == 0)
                        s2.getUint();
                    else if (type == 1)
                        s2.getString();
                    else
                        s2.getBytes();
                }
            } catch (const std::exception &) {
                threw = true;
            }
            CHECK(threw);
        }
    }

    // der: random garbage must throw or end cleanly under every
    // reader entry point (the sanitizer job catches memory misuse).
    for (std::uint64_t i = 0; i < 200; ++i) {
        Rng rng(i, "fuzz-der-garbage");
        Blob junk(1 + rng.nextBounded(200));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.next());
        try {
            DerReader r(junk);
            while (!r.atEnd()) {
                switch (rng.nextBounded(4)) {
                  case 0: r.getUint(); break;
                  case 1: r.getBytes(); break;
                  case 2: r.getString(); break;
                  default: r.getSequence(); break;
                }
            }
        } catch (const std::exception &) {
        }
    }

    // der: a varint longer than 64 bits is malformed, not undefined
    // behaviour (regression for the unbounded-shift decode bug).
    {
        Blob crafted;
        crafted.push_back(0x02); // uint tag
        crafted.push_back(12);   // 12 content bytes
        for (int j = 0; j < 11; ++j)
            crafted.push_back(0x80 | 1);
        crafted.push_back(0x01);
        DerReader r(crafted);
        CHECK_THROWS(r.getUint());
    }

    return TEST_MAIN_RESULT();
}
