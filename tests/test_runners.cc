/**
 * End-to-end invariants of the runners, foremost the paper's central
 * claim: live-point replay reproduces the full-warming (SMARTS)
 * estimate — checkpointed warm state adds no bias.
 */

#include "test_util.hh"

#include "core/runners.hh"
#include "core/stratified.hh"

int
main()
{
    using namespace lp;
    using namespace lptest;

    const CoreConfig cfg = baseConfig();
    const TinyLib t = buildTinyLibrary("runtest", 600'000, 31, 60);
    const Program &prog = t.prog;
    const SampleDesign &design = t.design;
    const LivePointLibrary &lib = t.lib;

    const SampledEstimate smarts = runSmarts(prog, cfg, design);
    CHECK(smarts.cpi() > 0.1 && smarts.cpi() < 20.0);
    CHECK_EQ(smarts.stat.count(), design.count);

    // Zero additional bias: replaying every live-point in stored
    // order gives the same per-window CPIs as full warming.
    LivePointRunOptions opt;
    const LivePointRunResult replay = runLivePoints(prog, lib, cfg, opt);
    CHECK_EQ(replay.processed, lib.size());
    CHECK_NEAR(replay.cpi(), smarts.cpi(), 1e-9);
    CHECK_NEAR(replay.finalSnapshot.relHalfWidth,
               smarts.stat.relHalfWidth(confidenceZ(0.997)), 1e-9);

    // The estimate is order-invariant over the full library, and
    // thread-count-invariant.
    {
        LivePointRunOptions shuffled;
        shuffled.shuffleSeed = 123;
        const LivePointRunResult r =
            runLivePoints(prog, lib, cfg, shuffled);
        CHECK_NEAR(r.cpi(), replay.cpi(), 1e-9);

        LivePointRunOptions parallel;
        parallel.threads = 4;
        const LivePointRunResult p =
            runLivePoints(prog, lib, cfg, parallel);
        CHECK_NEAR(p.cpi(), replay.cpi(), 1e-12);
    }

    // Restricted wrong-path approximation changes little.
    {
        LivePointRunOptions approx;
        approx.approxWrongPath = true;
        const LivePointRunResult r =
            runLivePoints(prog, lib, cfg, approx);
        CHECK_REL(r.cpi(), replay.cpi(), 0.10);
    }

    // Matched pair of a config against itself: exactly zero delta.
    {
        LivePointRunOptions mp;
        const MatchedPairOutcome same =
            runMatchedPair(prog, lib, cfg, cfg, mp);
        CHECK_NEAR(same.result.meanDelta, 0.0, 1e-12);
        CHECK(!same.result.significant);

        // A plainly slower memory must read as significantly slower.
        const CoreConfig slow = slowMemConfig();
        const MatchedPairOutcome diff =
            runMatchedPair(prog, lib, cfg, slow, mp);
        CHECK(diff.result.meanDelta > 0.0);
        CHECK(diff.result.significant);
        CHECK(diff.pairedSampleSize > 0);
        CHECK(diff.absoluteSampleSize >= minCltSample);
    }

    // AW-MRRL: small bias relative to full warming, less warming work.
    {
        const MrrlAnalysis mrrl = analyzeMrrl(
            prog, design.windowStarts(), design.windowLen());
        CHECK_EQ(mrrl.warmingLengths.size(), design.count);
        const SampledEstimate aw =
            runAdaptiveWarming(prog, cfg, design, mrrl, true);
        CHECK_REL(aw.cpi(), smarts.cpi(), 0.25);
        CHECK(aw.warmedInsts < smarts.warmedInsts);
    }

    // Stratified estimator agrees with the uniform estimate.
    {
        StratifiedOptions sopt;
        sopt.spec = ConfidenceSpec{0.997, 0.10};
        const StratifiedResult strat =
            runStratified(prog, lib, cfg, sopt);
        CHECK(strat.processed > 0);
        CHECK(strat.processed <= lib.size());
        CHECK_NEAR(strat.mean, replay.cpi(),
                   0.15 * replay.cpi() + 1e-12);
    }

    // Complete detailed simulation runs and yields a sane CPI.
    {
        const CompleteSimResult cs =
            runCompleteDetailed(prog, cfg, 200'000);
        CHECK_EQ(cs.insts, 200'000u);
        CHECK(cs.cpi > 0.1 && cs.cpi < 20.0);
    }

    return TEST_MAIN_RESULT();
}
