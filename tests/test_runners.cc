/**
 * End-to-end invariants of the runners, foremost the paper's central
 * claim: live-point replay reproduces the full-warming (SMARTS)
 * estimate — checkpointed warm state adds no bias.
 */

#include "harness.hh"

#include "core/runners.hh"
#include "core/stratified.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace lp;

    WorkloadProfile profile = tinyProfile(600'000, 31);
    profile.name = "runtest";
    const Program prog = generateProgram(profile);
    const InstCount length = measureProgramLength(prog);
    const CoreConfig cfg = CoreConfig::eightWay();

    const SampleDesign design = SampleDesign::systematic(
        length, 60, 1000, cfg.detailedWarming);

    const SampledEstimate smarts = runSmarts(prog, cfg, design);
    CHECK(smarts.cpi() > 0.1 && smarts.cpi() < 20.0);
    CHECK_EQ(smarts.stat.count(), design.count);

    LivePointBuilderConfig bc;
    bc.bpredConfigs = {cfg.bpred};
    LivePointBuilder builder(bc);
    const LivePointLibrary lib = builder.build(prog, design);

    // Zero additional bias: replaying every live-point in stored
    // order gives the same per-window CPIs as full warming.
    LivePointRunOptions opt;
    const LivePointRunResult replay = runLivePoints(prog, lib, cfg, opt);
    CHECK_EQ(replay.processed, lib.size());
    CHECK_NEAR(replay.cpi(), smarts.cpi(), 1e-9);
    CHECK_NEAR(replay.finalSnapshot.relHalfWidth,
               smarts.stat.relHalfWidth(confidenceZ(0.997)), 1e-9);

    // The estimate is order-invariant over the full library, and
    // thread-count-invariant.
    {
        LivePointRunOptions shuffled;
        shuffled.shuffleSeed = 123;
        const LivePointRunResult r =
            runLivePoints(prog, lib, cfg, shuffled);
        CHECK_NEAR(r.cpi(), replay.cpi(), 1e-9);

        LivePointRunOptions parallel;
        parallel.threads = 4;
        const LivePointRunResult p =
            runLivePoints(prog, lib, cfg, parallel);
        CHECK_NEAR(p.cpi(), replay.cpi(), 1e-12);
    }

    // Restricted wrong-path approximation changes little.
    {
        LivePointRunOptions approx;
        approx.approxWrongPath = true;
        const LivePointRunResult r =
            runLivePoints(prog, lib, cfg, approx);
        const double bias =
            std::fabs(r.cpi() - replay.cpi()) / replay.cpi();
        CHECK(bias < 0.10);
    }

    // Matched pair of a config against itself: exactly zero delta.
    {
        LivePointRunOptions mp;
        const MatchedPairOutcome same =
            runMatchedPair(prog, lib, cfg, cfg, mp);
        CHECK_NEAR(same.result.meanDelta, 0.0, 1e-12);
        CHECK(!same.result.significant);

        // A plainly slower memory must read as significantly slower.
        CoreConfig slow = cfg;
        slow.mem.memLatency = 400;
        slow.mem.l2Latency = 40;
        const MatchedPairOutcome diff =
            runMatchedPair(prog, lib, cfg, slow, mp);
        CHECK(diff.result.meanDelta > 0.0);
        CHECK(diff.result.significant);
        CHECK(diff.pairedSampleSize > 0);
        CHECK(diff.absoluteSampleSize >= minCltSample);
    }

    // AW-MRRL: small bias relative to full warming, less warming work.
    {
        const MrrlAnalysis mrrl = analyzeMrrl(
            prog, design.windowStarts(), design.windowLen());
        CHECK_EQ(mrrl.warmingLengths.size(), design.count);
        const SampledEstimate aw =
            runAdaptiveWarming(prog, cfg, design, mrrl, true);
        const double bias =
            std::fabs(aw.cpi() - smarts.cpi()) / smarts.cpi();
        CHECK(bias < 0.25);
        CHECK(aw.warmedInsts < smarts.warmedInsts);
    }

    // Stratified estimator agrees with the uniform estimate.
    {
        StratifiedOptions sopt;
        sopt.spec = ConfidenceSpec{0.997, 0.10};
        const StratifiedResult strat =
            runStratified(prog, lib, cfg, sopt);
        CHECK(strat.processed > 0);
        CHECK(strat.processed <= lib.size());
        CHECK_NEAR(strat.mean, replay.cpi(),
                   0.15 * replay.cpi() + 1e-12);
    }

    // Complete detailed simulation runs and yields a sane CPI.
    {
        const CompleteSimResult cs =
            runCompleteDetailed(prog, cfg, 200'000);
        CHECK_EQ(cs.insts, 200'000u);
        CHECK(cs.cpi > 0.1 && cs.cpi < 20.0);
    }

    return TEST_MAIN_RESULT();
}
