/**
 * The io layer's contract: MappedFile maps a file's exact bytes with
 * working paging hints and clean failure on missing files; the
 * LibrarySource backends expose identical bytes through mmap and
 * owned-buffer storage; and the backend selector honours explicit
 * requests and the LP_NO_MMAP environment override.
 */

#include "test_util.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "io/mapped_file.hh"
#include "io/source.hh"

namespace
{

void
writeFile(const std::string &path, const lp::Blob &data)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    CHECK(f != nullptr);
    if (!data.empty())
        CHECK(std::fwrite(data.data(), 1, data.size(), f) ==
              data.size());
    std::fclose(f);
}

} // namespace

int
main()
{
    using namespace lp;

    const std::string path = "iotest-data.bin";
    Blob payload(256 * 1024);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
    writeFile(path, payload);

    // MappedFile: exact bytes, working hints, clean move semantics.
    if (mmapSupported()) {
        MappedFile m = MappedFile::map(path);
        CHECK(m.mapped());
        CHECK_EQ(m.size(), payload.size());
        CHECK(std::memcmp(m.data(), payload.data(), payload.size()) ==
              0);

        // Hints are advisory: any range (aligned or not, even past
        // the end) must leave the bytes readable.
        m.adviseSequential();
        m.willNeed(0, m.size());
        m.willNeed(1000, 9000);
        m.willNeed(m.size() - 1, 100);
        m.dontNeed(5000, 100000);
        m.dontNeed(0, m.size());
        m.willNeed(m.size() + 10, 5);
        m.dontNeed(m.size() + 10, 5);
        CHECK(std::memcmp(m.data(), payload.data(), payload.size()) ==
              0);

        MappedFile moved = std::move(m);
        CHECK(!m.mapped());
        CHECK(moved.mapped());
        CHECK_EQ(moved.size(), payload.size());
        CHECK(std::memcmp(moved.data(), payload.data(),
                          payload.size()) == 0);

        CHECK_THROWS(MappedFile::map("iotest-does-not-exist.bin"));
    }

    // Both backends expose byte-identical content; their
    // self-description (kind / mapped / pinnedBytes) matches how they
    // hold it.
    {
        const auto buf =
            openLibrarySource(path, StorageBackend::buffer);
        CHECK(std::string(buf->kind()) == "owned-buffer");
        CHECK(!buf->mapped());
        CHECK_EQ(buf->size(), payload.size());
        CHECK_EQ(buf->pinnedBytes(), payload.size());
        CHECK(std::memcmp(buf->data(), payload.data(),
                          payload.size()) == 0);
        buf->prefetch(0, buf->size()); // no-op, must not crash
        buf->release(0, buf->size());

        if (mmapSupported()) {
            const auto map =
                openLibrarySource(path, StorageBackend::mapped);
            CHECK(std::string(map->kind()) == "mmap");
            CHECK(map->mapped());
            CHECK_EQ(map->size(), payload.size());
            CHECK_EQ(map->pinnedBytes(), 0u);
            CHECK(std::memcmp(map->data(), buf->data(),
                              payload.size()) == 0);
            map->prefetch(4096, 64 * 1024);
            map->release(4096, 64 * 1024);
            CHECK(std::memcmp(map->data(), payload.data(),
                              payload.size()) == 0);
        }

        CHECK_THROWS(openLibrarySource("iotest-does-not-exist.bin",
                                       StorageBackend::buffer));
        CHECK_THROWS(openLibrarySource("iotest-does-not-exist.bin",
                                       StorageBackend::autoSelect));
    }

    // The selector: auto maps where possible, and LP_NO_MMAP=1
    // forces the owned-buffer fallback (the CI no-mmap leg runs the
    // whole fast suite under that override).
    {
        const bool envDisabled = mmapDisabledByEnv();
        const auto autoSrc =
            openLibrarySource(path, StorageBackend::autoSelect);
        if (mmapSupported() && !envDisabled)
            CHECK(autoSrc->mapped());
        else
            CHECK(!autoSrc->mapped());

#if defined(__unix__) || defined(__APPLE__)
        setenv("LP_NO_MMAP", "1", 1);
        CHECK(mmapDisabledByEnv());
        const auto forced =
            openLibrarySource(path, StorageBackend::autoSelect);
        CHECK(!forced->mapped());
        CHECK(std::string(forced->kind()) == "owned-buffer");
        if (envDisabled)
            setenv("LP_NO_MMAP", "1", 1);
        else
            unsetenv("LP_NO_MMAP");
#endif
    }

    // Backend names are stable (they appear in tooling output).
    CHECK(std::string(storageBackendName(StorageBackend::buffer)) ==
          "owned-buffer");
    CHECK(std::string(storageBackendName(StorageBackend::mapped)) ==
          "mmap");
    CHECK(std::string(storageBackendName(
              StorageBackend::autoSelect)) == "auto");

    std::remove(path.c_str());
    return TEST_MAIN_RESULT();
}
