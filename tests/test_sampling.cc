/** Sample sizing, systematic designs, and the online estimator. */

#include "harness.hh"

#include "core/sample.hh"
#include "util/rng.hh"

int
main()
{
    using namespace lp;

    // requiredSampleSize: n = ceil((z*cov/err)^2), floored at 30.
    {
        const ConfidenceSpec spec{0.997, 0.03};
        const double z = confidenceZ(0.997);
        const std::uint64_t n = requiredSampleSize(0.5, spec);
        const double expect = (z * 0.5 / 0.03) * (z * 0.5 / 0.03);
        CHECK(n >= static_cast<std::uint64_t>(expect));
        CHECK(n <= static_cast<std::uint64_t>(expect) + 1);
        CHECK_EQ(requiredSampleSize(0.0, spec), minCltSample);
        // Looser target -> smaller sample.
        CHECK(requiredSampleSize(0.5, ConfidenceSpec{0.95, 0.05}) < n);
    }

    // SampleDesign geometry.
    {
        const SampleDesign d =
            SampleDesign::systematic(10'000'000, 100, 1000, 2000);
        CHECK_EQ(d.count, 100u);
        CHECK_EQ(d.windowLen(), 3000u);
        CHECK_EQ(d.period(), 100'000u);
        // One window per period, jittered within it, never
        // overlapping, and deterministic.
        for (std::uint64_t i = 0; i < d.count; ++i) {
            const InstCount s = d.windowStart(i);
            CHECK(s >= i * d.period());
            CHECK(s + d.windowLen() <= (i + 1) * d.period());
            CHECK_EQ(s, d.windowStart(i));
        }
        // The jitter actually varies across periods.
        bool varies = false;
        for (std::uint64_t i = 1; i < d.count; ++i)
            varies = varies || (d.windowStart(i) - i * d.period() !=
                                d.windowStart(0));
        CHECK(varies);
        CHECK_EQ(d.windowStarts().size(), 100u);
        CHECK_EQ(SampleDesign::maxCount(10'000'000, 1000, 2000),
                 10'000'000u / 3000u);
        // Requesting more windows than fit clamps.
        const SampleDesign big =
            SampleDesign::systematic(30'000, 100, 1000, 2000);
        CHECK_EQ(big.count, 10u);
        CHECK(big == big);
        CHECK(big != d);
    }

    // OnlineEstimator: unbiased on synthetic data, satisfied only
    // after minCltSample, converges on a tight distribution.
    {
        const ConfidenceSpec spec{0.997, 0.03};
        OnlineEstimator est(spec);
        Rng rng(9, "online");
        OnlineSnapshot snap;
        std::size_t satisfiedAt = 0;
        for (int i = 0; i < 2000; ++i) {
            // Mean 2.0, sd ~0.14 (mean of 4 uniforms, shifted).
            double x = 0;
            for (int k = 0; k < 4; ++k)
                x += rng.nextDouble();
            x = 1.5 + x / 4.0;
            snap = est.add(x);
            if (i + 1 < static_cast<int>(minCltSample))
                CHECK(!snap.valid && !snap.satisfied);
            if (snap.satisfied && !satisfiedAt)
                satisfiedAt = snap.n;
        }
        CHECK(snap.valid);
        CHECK(snap.satisfied);
        CHECK(satisfiedAt >= minCltSample);
        CHECK(satisfiedAt < 500);
        CHECK_NEAR(snap.mean, 2.0, 0.05);
        CHECK(snap.relHalfWidth <= spec.relativeError);
        CHECK_EQ(est.snapshot().n, 2000u);
    }

    return TEST_MAIN_RESULT();
}
