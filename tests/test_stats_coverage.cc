/**
 * Statistical coverage of ConfidenceSpec / OnlineEstimator: over 200
 * seeded resamples of a synthetic per-window CPI population, the
 * nominal 95% interval must cover the full-run truth at the binomial
 * rate. A wrong variance formula, z-value, or a biased
 * RunningStat::merge shifts coverage far outside the tolerance band,
 * so this catches the regressions a round-trip test cannot.
 */

#include "test_util.hh"

#include <cmath>

#include "core/sample.hh"

int
main()
{
    using namespace lp;

    // A synthetic workload's per-window CPIs: two phases (a fast
    // compute phase and a slower memory-bound phase) plus heavy-ish
    // window noise — bimodal and skewed, like real sampled CPIs, so
    // coverage is tested away from the normal-population easy case.
    std::vector<double> pop;
    {
        Rng rng(101, "coverage-population");
        pop.reserve(20000);
        for (std::size_t i = 0; i < 20000; ++i) {
            const bool memPhase = rng.nextBool(0.3);
            double x = memPhase ? 3.1 : 1.4;
            for (int k = 0; k < 3; ++k)
                x += (rng.nextDouble() - 0.5) * (memPhase ? 0.8 : 0.3);
            if (rng.nextBool(0.02))
                x += 2.0 * rng.nextDouble(); // rare outlier windows
            pop.push_back(x);
        }
    }
    double truth = 0.0;
    for (const double x : pop)
        truth += x;
    truth /= static_cast<double>(pop.size());

    const ConfidenceSpec spec{0.95, 0.03};
    const std::size_t resamples = 200;
    const std::size_t windows = 150;
    std::size_t covered = 0;
    for (std::size_t t = 0; t < resamples; ++t) {
        Rng rng(1000 + t, "coverage-resample");

        // Sequential adds and block folds must agree: the resample is
        // folded both ways and the block path (what the parallel
        // replay engine runs) is the one scored for coverage.
        OnlineEstimator seq(spec);
        OnlineEstimator folded(spec);
        RunningStat block;
        OnlineSnapshot snapSeq;
        for (std::size_t i = 0; i < windows; ++i) {
            const double x =
                pop[static_cast<std::size_t>(
                    rng.nextBounded(pop.size()))];
            snapSeq = seq.add(x);
            block.add(x);
            if (block.count() == 8 || i + 1 == windows) {
                folded.fold(block);
                block = RunningStat();
            }
        }
        const OnlineSnapshot snap = folded.snapshot();
        CHECK_EQ(snap.n, snapSeq.n);
        CHECK_REL(snap.mean, snapSeq.mean, 1e-12);
        CHECK_REL(snap.relHalfWidth, snapSeq.relHalfWidth, 1e-9);
        CHECK(snap.valid);

        const double halfWidth = snap.relHalfWidth * snap.mean;
        if (std::fabs(snap.mean - truth) <= halfWidth)
            ++covered;
    }

    // Binomial(200, 0.95): mean 190, sd ~3.1. The run is seeded and
    // deterministic; the band below is ~3 sd, so only a genuine
    // estimator regression (wrong variance, wrong z, biased merge)
    // can leave it.
    std::printf("coverage: %zu / %zu nominal-95%% intervals cover the "
                "truth\n",
                covered, resamples);
    CHECK(covered >= 180);
    CHECK(covered <= 200);

    // The spec's satisfied flag must agree with the reported width at
    // exactly the spec boundary.
    {
        OnlineEstimator est(ConfidenceSpec{0.95, 0.5});
        Rng rng(7, "coverage-satisfied");
        OnlineSnapshot s{};
        for (std::size_t i = 0; i < minCltSample; ++i)
            s = est.add(1.0 + rng.nextDouble());
        CHECK(s.valid);
        CHECK_EQ(s.satisfied, s.relHalfWidth <= 0.5);
    }

    return TEST_MAIN_RESULT();
}
